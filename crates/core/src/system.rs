//! System composition and whole-run reports.
//!
//! [`SystemBuilder`] assembles an SoC exactly as paper Fig. 2 depicts it:
//! a set of heterogeneous tiles (each bound to a kernel function and a
//! recorded trace), a shared memory hierarchy, inter-tile channels, and an
//! accelerator bank — then runs the Interleaver to completion and returns
//! a [`SimReport`].

use std::fmt;
use std::sync::Arc;

use mosaic_ir::{FuncId, Module};
use mosaic_lint::{lint_system, LintLevel, TileBinding};
use mosaic_mem::{CacheConfig, DramKind, HierarchyConfig, MemStats, MemoryHierarchy};
use mosaic_obs::{IrProfile, ObsLevel, StatsRegistry, Timeline};
use mosaic_part::{partition, InterferenceGraph, LatencyModel, MemGeometry, PartitionPlan};
use mosaic_tile::{
    AccelSim, ChannelConfig, ChannelSet, CoreConfig, CoreTile, NoAccel, Tile, TileStats,
};
use mosaic_trace::KernelTrace;

use crate::energy::EnergyModel;
use crate::error::MosaicError;
use crate::interleaver::Interleaver;

/// Final report of one system simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Cycle at which the last tile finished.
    pub cycles: u64,
    /// Per-tile statistics.
    pub tiles: Vec<TileStats>,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
    /// Cycles the DRAM bandwidth cap throttled ready requests.
    pub dram_throttled: u64,
    /// Total retired instructions.
    pub total_retired: u64,
    /// Core-side dynamic energy (instructions + accelerators), pJ.
    pub core_energy_pj: f64,
    /// Memory-hierarchy dynamic energy, pJ.
    pub mem_energy_pj: f64,
    /// Static energy over the run, pJ.
    pub static_energy_pj: f64,
    /// Hierarchical statistics registry (`tile.*`, `mem.*`, `sim.*`
    /// paths). Always populated — reading the counters after a run is
    /// free; only *sampling* (histograms, per-instruction profile,
    /// timeline spans) is gated behind [`SystemBuilder::observe`].
    ///
    /// Everything except the `sim.ff.*` scheduler diagnostics is
    /// bit-identical between fast-forward and naive stepping.
    pub registry: StatsRegistry,
    /// Cycle-timeline spans in Chrome `trace_event` form (empty below
    /// [`ObsLevel::Trace`]). Export with [`Timeline::to_chrome_json`].
    pub timeline: Timeline,
    /// Per-static-instruction profile: retires, attributed stall cycles,
    /// memory-latency histograms (empty below [`ObsLevel::Stats`]).
    pub profile: IrProfile,
}

impl SimReport {
    /// Aggregate instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_retired as f64 / self.cycles as f64
        }
    }

    /// Total energy, pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.core_energy_pj + self.mem_energy_pj + self.static_energy_pj
    }

    /// Energy-delay product in J·s under `model`.
    pub fn edp_js(&self, model: &EnergyModel) -> f64 {
        model.edp(self.total_energy_pj(), self.cycles)
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles: {}", self.cycles)?;
        writeln!(
            f,
            "retired: {}  (IPC {:.3})",
            self.total_retired,
            self.ipc()
        )?;
        for t in &self.tiles {
            writeln!(
                f,
                "  tile {:<16} retired {:>10}  done@{:>10}  ipc {:.3}",
                t.name,
                t.retired,
                t.done_at.map(|c| c.to_string()).unwrap_or_default(),
                t.ipc()
            )?;
        }
        writeln!(
            f,
            "mem: L1 {}/{} (h/m)  LLC {}/{}  DRAM rd {} wb {}",
            self.mem.l1_hits,
            self.mem.l1_misses,
            self.mem.llc_hits,
            self.mem.llc_misses,
            self.mem.dram_reads,
            self.mem.dram_writebacks
        )?;
        writeln!(
            f,
            "energy: core {:.1} nJ, mem {:.1} nJ, static {:.1} nJ",
            self.core_energy_pj / 1e3,
            self.mem_energy_pj / 1e3,
            self.static_energy_pj / 1e3
        )
    }
}

struct TileSpec {
    config: CoreConfig,
    func: FuncId,
    trace_tile: usize,
}

/// Where a resumed run gets its snapshot from.
enum ResumeSource {
    /// A checkpoint file written by [`Interleaver::save_checkpoint`] (via
    /// [`mosaic_ckpt::Checkpoint::save`]) or the periodic policy.
    Path(std::path::PathBuf),
    /// An in-memory snapshot, shared between sweep rows forking off one
    /// warmed prefix (see `mosaic-bench`'s `run_sweep_warm`).
    InMemory(Arc<mosaic_ckpt::Checkpoint>),
}

/// Builder for a tiled system (paper Fig. 2's tile map).
///
/// # Examples
///
/// See [`crate::runner::simulate_spmd`] for the common end-to-end path;
/// the builder itself is used for heterogeneous compositions:
///
/// ```no_run
/// # use mosaic_core::{SystemBuilder, xeon_memory};
/// # use mosaic_tile::CoreConfig;
/// # fn demo(module: std::sync::Arc<mosaic_ir::Module>,
/// #         trace: std::sync::Arc<mosaic_trace::KernelTrace>,
/// #         access: mosaic_ir::FuncId, execute: mosaic_ir::FuncId) {
/// let report = SystemBuilder::new(module, trace)
///     .memory(xeon_memory())
///     .core(CoreConfig::in_order().with_name("access"), access, 0)
///     .core(CoreConfig::in_order().with_name("execute"), execute, 1)
///     .run()
///     .unwrap();
/// println!("{report}");
/// # }
/// ```
pub struct SystemBuilder {
    module: Arc<Module>,
    trace: Arc<KernelTrace>,
    tiles: Vec<TileSpec>,
    memory: HierarchyConfig,
    channel: ChannelConfig,
    accel: Option<Box<dyn AccelSim>>,
    energy: EnergyModel,
    cycle_limit: u64,
    fast_forward: bool,
    watchdog_window: Option<u64>,
    lint: LintLevel,
    observe: ObsLevel,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<std::path::PathBuf>,
    resume: Option<ResumeSource>,
    partition: Option<PartitionPlan>,
}

impl fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("tiles", &self.tiles.len())
            .finish()
    }
}

impl SystemBuilder {
    /// Starts a system over a module and its recorded kernel trace.
    pub fn new(module: Arc<Module>, trace: Arc<KernelTrace>) -> Self {
        SystemBuilder {
            module,
            trace,
            tiles: Vec::new(),
            memory: HierarchyConfig::default(),
            channel: ChannelConfig::default(),
            accel: None,
            energy: EnergyModel::default(),
            cycle_limit: 2_000_000_000,
            fast_forward: true,
            watchdog_window: None,
            lint: LintLevel::default(),
            observe: ObsLevel::Off,
            checkpoint_every: None,
            checkpoint_path: None,
            resume: None,
            partition: None,
        }
    }

    /// Writes a checkpoint roughly every `cycles` cycles (at the first
    /// stepped cycle at or past each boundary — fast-forward jumps can
    /// land past one). Requires a destination set with
    /// [`Self::checkpoint_to`]; the file is overwritten each time so it
    /// always holds the most recent snapshot.
    pub fn checkpoint_every(mut self, cycles: u64) -> Self {
        self.checkpoint_every = Some(cycles);
        self
    }

    /// Sets where periodic checkpoints (see [`Self::checkpoint_every`])
    /// are written.
    pub fn checkpoint_to(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resumes from a checkpoint file instead of starting at cycle 0. The
    /// builder must describe the *same* system the checkpoint was taken
    /// from — same tiles in the same order, same memory hierarchy, same
    /// kernel trace; static state is rebuilt from this configuration and
    /// only dynamic state is loaded. Parameters that do not feed the
    /// snapshot (cycle limit, fast-forward mode, observability level,
    /// lint level) may differ freely.
    pub fn resume_from(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.resume = Some(ResumeSource::Path(path.into()));
        self
    }

    /// Resumes from an in-memory snapshot taken with
    /// [`Interleaver::save_checkpoint`]. The `Arc` makes forking cheap:
    /// many sweep rows can share one warmed prefix without re-reading or
    /// copying it. Same compatibility contract as [`Self::resume_from`].
    pub fn resume_from_checkpoint(mut self, ckpt: Arc<mosaic_ckpt::Checkpoint>) -> Self {
        self.resume = Some(ResumeSource::InMemory(ckpt));
        self
    }

    /// Sets the observability level (default [`ObsLevel::Off`]).
    ///
    /// `Off` costs the hot path nothing and still yields a populated
    /// [`SimReport::registry`]; `Stats` adds the per-instruction profile
    /// and occupancy histograms; `Trace` additionally records timeline
    /// spans for Chrome/Perfetto. All registry counters are bit-identical
    /// across levels and across fast-forward/naive stepping.
    pub fn observe(mut self, level: ObsLevel) -> Self {
        self.observe = level;
        self
    }

    /// Sets the pre-simulation lint gate's strictness (default
    /// [`LintLevel::Warn`]): `Off` skips the linter, `Warn` prints
    /// findings to stderr, `Deny` fails `build` with
    /// [`MosaicError::Lint`] on any finding.
    pub fn lint(mut self, level: LintLevel) -> Self {
        self.lint = level;
        self
    }

    /// Enables or disables the Interleaver's event-horizon fast-forward
    /// scheduler (on by default; results are bit-identical either way).
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Sets the memory hierarchy configuration.
    pub fn memory(mut self, config: HierarchyConfig) -> Self {
        self.memory = config;
        self
    }

    /// Sets the default inter-tile channel configuration.
    pub fn channels(mut self, config: ChannelConfig) -> Self {
        self.channel = config;
        self
    }

    /// Installs the accelerator models (paper §IV-A).
    pub fn accelerators(mut self, accel: Box<dyn AccelSim>) -> Self {
        self.accel = Some(accel);
        self
    }

    /// Overrides the energy model.
    pub fn energy(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Overrides the cycle cap.
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Overrides the naive-path deadlock watchdog's quiet window (see
    /// [`Interleaver::set_watchdog_window`]).
    pub fn watchdog_window(mut self, window: u64) -> Self {
        self.watchdog_window = Some(window);
        self
    }

    /// Adds a core tile running `func` and replaying trace tile
    /// `trace_tile`.
    pub fn core(mut self, config: CoreConfig, func: FuncId, trace_tile: usize) -> Self {
        self.tiles.push(TileSpec {
            config,
            func,
            trace_tile,
        });
        self
    }

    /// The memory geometry the static partitioner sees, derived from the
    /// configured hierarchy. The banked DRAM model line-interleaves
    /// 64-byte lines across `channels × banks_per_channel` units — a
    /// partition of the address space that `MemGeometry`'s flat modulo
    /// map reproduces exactly up to bank renaming (interference is
    /// preserved). The simple DRAM model has no banks; the default
    /// 8-bank proxy keeps footprint overlap visible.
    fn mem_geometry(&self) -> MemGeometry {
        match &self.memory.dram {
            DramKind::Banked(b) => {
                MemGeometry::new((b.channels * b.banks_per_channel) as usize, 64)
            }
            DramKind::Simple(_) => MemGeometry::default(),
        }
    }

    /// The minimum-latency model for static horizon bounds: each class
    /// is the minimum over all configured tiles (a lower bound must
    /// survive the fastest core), and mispredicted-gate bounds apply
    /// only when every tile uses static or no branch prediction.
    fn latency_model(&self) -> LatencyModel {
        use mosaic_ddg::InstClass;
        use mosaic_tile::BranchMode;
        let default = LatencyModel::default();
        if self.tiles.is_empty() {
            return default;
        }
        let arith = [
            InstClass::IntAlu,
            InstClass::IntMul,
            InstClass::IntDiv,
            InstClass::FpAdd,
            InstClass::FpMul,
            InstClass::FpDiv,
            InstClass::FpSpecial,
        ];
        let alu = self
            .tiles
            .iter()
            .flat_map(|t| arith.iter().map(|&c| t.config.costs.latency(c)))
            .min()
            .unwrap_or(default.alu);
        let branch = self
            .tiles
            .iter()
            .map(|t| t.config.costs.latency(InstClass::Branch))
            .min()
            .unwrap_or(default.branch);
        let gate_bounds = self
            .tiles
            .iter()
            .all(|t| matches!(t.config.branch, BranchMode::Static | BranchMode::None));
        LatencyModel {
            alu,
            branch,
            channel: self.channel.latency,
            gate_bounds,
        }
    }

    /// One [`TileBinding`] per configured tile (arguments unknown — the
    /// builder never sees concrete argument values).
    fn bindings(&self) -> Vec<TileBinding> {
        self.tiles
            .iter()
            .map(|spec| {
                let nparams = self.module.function(spec.func).params().len();
                TileBinding::new(spec.func, spec.config.queue_offset, vec![None; nparams])
            })
            .collect()
    }

    /// Builds the system interference graph for the current
    /// configuration and greedily partitions it into `shards` shards.
    /// The returned plan is already validated against the configured
    /// tile count and memory geometry, so it can be fed straight back
    /// through [`Self::partition_plan`].
    ///
    /// # Errors
    ///
    /// Returns [`MosaicError::InvalidConfig`] when no tiles are
    /// configured or the plan fails validation.
    pub fn compute_partition_plan(&self, shards: usize) -> Result<PartitionPlan, MosaicError> {
        if self.tiles.is_empty() {
            return Err(MosaicError::invalid_config(
                "partition.tiles",
                "cannot partition a system with no tiles",
            ));
        }
        let geometry = self.mem_geometry();
        let graph =
            InterferenceGraph::build(&self.module, &self.bindings(), geometry, &self.latency_model());
        let plan = partition(&graph, shards);
        plan.validate(self.tiles.len(), geometry.num_banks)
            .map_err(|e| MosaicError::invalid_config("partition.plan", e))?;
        Ok(plan)
    }

    /// Attaches a BSP partition plan to the system. The plan is
    /// validated against the configured tile count and memory geometry
    /// (and re-checked at `build`, in case the memory configuration
    /// changes afterwards); an attached plan exports its shard layout
    /// and graph statistics into the report's registry under `part.*`.
    ///
    /// # Errors
    ///
    /// Returns [`MosaicError::InvalidConfig`] when the plan does not
    /// cover exactly this system's tiles and banks.
    pub fn partition_plan(mut self, plan: PartitionPlan) -> Result<Self, MosaicError> {
        plan.validate(self.tiles.len(), self.mem_geometry().num_banks)
            .map_err(|e| MosaicError::invalid_config("partition.plan", e))?;
        self.partition = Some(plan);
        Ok(self)
    }

    /// Rejects configurations the simulator cannot honor, naming the
    /// offending field. Centralized here so every entry point (direct
    /// `build`, `run`, the pipeline helpers, sweep drivers) fails the
    /// same way before any cycle runs.
    fn validate(&self) -> Result<(), MosaicError> {
        fn check_cache(path: &str, c: &CacheConfig) -> Result<(), MosaicError> {
            // Line offsets are masked with `line_bytes - 1`, which is only
            // correct for power-of-two lines.
            if !c.line_bytes().is_power_of_two() {
                return Err(MosaicError::invalid_config(
                    &format!("{path}.line_bytes"),
                    format!("line size {} is not a power of two", c.line_bytes()),
                ));
            }
            // The size must tile exactly into sets × ways × line, or the
            // truncated set count silently models a smaller cache than
            // configured (a 20 MiB 20-way LLC is fine; 20 MiB 8-way is not).
            let tile = c.line_bytes() as u64 * c.ways() as u64;
            if !c.size_bytes().is_multiple_of(tile) {
                return Err(MosaicError::invalid_config(
                    &format!("{path}.size_bytes"),
                    format!(
                        "cache size {} is not a whole number of sets ({} ways x {}B lines)",
                        c.size_bytes(),
                        c.ways(),
                        c.line_bytes()
                    ),
                ));
            }
            Ok(())
        }
        if self.channel.capacity == 0 {
            return Err(MosaicError::invalid_config(
                "channel.capacity",
                "channels need at least one buffer slot; a zero-capacity \
                 channel can never pass a message",
            ));
        }
        for spec in &self.tiles {
            if spec.config.clock_divisor == 0 {
                return Err(MosaicError::invalid_config(
                    "core.clock_divisor",
                    format!(
                        "tile {} has clock divisor 0; it would never be stepped",
                        spec.config.name
                    ),
                ));
            }
            if spec.trace_tile >= self.trace.tile_count() {
                return Err(MosaicError::invalid_config(
                    "core.trace_tile",
                    format!(
                        "tile {} replays trace tile {} but the trace has {}",
                        spec.config.name,
                        spec.trace_tile,
                        self.trace.tile_count()
                    ),
                ));
            }
        }
        if let Some(every) = self.checkpoint_every {
            if every == 0 {
                return Err(MosaicError::invalid_config(
                    "checkpoint.every",
                    "a checkpoint interval of 0 cycles would snapshot at \
                     every step; pick a positive interval",
                ));
            }
            if self.checkpoint_path.is_none() {
                return Err(MosaicError::invalid_config(
                    "checkpoint.path",
                    "checkpoint_every needs a destination; set one with \
                     checkpoint_to(path)",
                ));
            }
        }
        if let Some(plan) = &self.partition {
            plan.validate(self.tiles.len(), self.mem_geometry().num_banks)
                .map_err(|e| MosaicError::invalid_config("partition.plan", e))?;
        }
        check_cache("memory.l1", &self.memory.l1)?;
        if let Some(l2) = &self.memory.l2 {
            check_cache("memory.l2", l2)?;
        }
        check_cache("memory.llc", &self.memory.llc)?;
        if let DramKind::Simple(d) = &self.memory.dram {
            if d.max_per_epoch == 0 {
                return Err(MosaicError::invalid_config(
                    "memory.dram.max_per_epoch",
                    "a bandwidth cap of 0 transfers per epoch means no \
                     memory request can ever complete",
                ));
            }
            if d.epoch_cycles == 0 {
                return Err(MosaicError::invalid_config(
                    "memory.dram.epoch_cycles",
                    "epoch length must be positive",
                ));
            }
        }
        Ok(())
    }

    /// Runs the static linter over the configured system (each tile's
    /// function under its queue offset, arguments unknown) and enforces
    /// the configured [`LintLevel`].
    fn lint_gate(&self) -> Result<(), MosaicError> {
        if self.lint == LintLevel::Off {
            return Ok(());
        }
        let report = lint_system(&self.module, &self.bindings());
        if report.fails(self.lint) {
            return Err(MosaicError::Lint(report));
        }
        if !report.is_clean() {
            eprintln!("mosaic-lint (builder gate):\n{report}");
        }
        Ok(())
    }

    /// Builds the interleaver without running it (stepwise use).
    ///
    /// # Errors
    ///
    /// Returns [`MosaicError::InvalidConfig`] naming the offending field
    /// when the configuration cannot be honored, or [`MosaicError::Lint`]
    /// when the lint level is [`LintLevel::Deny`] and the static linter
    /// found problems.
    pub fn build(self) -> Result<Interleaver, MosaicError> {
        self.validate()?;
        self.lint_gate()?;
        let ntiles = self.tiles.len();
        let mut mem = MemoryHierarchy::new(self.memory, ntiles.max(1));
        // A warmed or reused hierarchy must never leak hit/miss counts
        // into this run's report (sweep rows would otherwise accumulate):
        // every build starts from zeroed stats.
        mem.reset_stats();
        let channels = ChannelSet::new(self.channel);
        let accel: Box<dyn AccelSim> = self.accel.unwrap_or_else(|| Box::new(NoAccel));
        let tiles: Vec<Box<dyn Tile>> = self
            .tiles
            .into_iter()
            .enumerate()
            .map(|(slot, spec)| {
                let trace = Arc::new(self.trace.tile(spec.trace_tile).clone());
                Box::new(CoreTile::new(
                    spec.config,
                    self.module.clone(),
                    spec.func,
                    trace,
                    slot,
                )) as Box<dyn Tile>
            })
            .collect();
        let mut il = Interleaver::new(tiles, mem, channels, accel);
        il.set_cycle_limit(self.cycle_limit);
        il.set_fast_forward(self.fast_forward);
        il.set_observe(self.observe);
        if let Some(w) = self.watchdog_window {
            il.set_watchdog_window(w);
        }
        // Restore after set_observe so recorded profiles/timelines carry
        // over, and before the checkpoint policy so the next boundary is
        // anchored to the resumed clock.
        if let Some(source) = self.resume {
            let loaded;
            let ckpt: &mosaic_ckpt::Checkpoint = match &source {
                ResumeSource::Path(path) => {
                    loaded = mosaic_ckpt::Checkpoint::load(path)?;
                    &loaded
                }
                ResumeSource::InMemory(c) => c,
            };
            il.restore_checkpoint(ckpt)?;
        }
        if let (Some(every), Some(path)) = (self.checkpoint_every, self.checkpoint_path) {
            il.set_checkpoint_policy(every, path);
        }
        Ok(il)
    }

    /// Builds and runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`MosaicError::InvalidConfig`] for a rejected
    /// configuration and [`MosaicError::Sim`] when the simulation
    /// deadlocks, exceeds the cycle cap, or a tile faults.
    pub fn run(self) -> Result<SimReport, MosaicError> {
        let energy = self.energy;
        let observe = self.observe;
        let areas: Vec<f64> = self.tiles.iter().map(|t| t.config.area_mm2).collect();
        // Summarize the attached partition plan (and the interference
        // graph it was cut from) before `build` consumes the builder;
        // the numbers land in the registry below.
        let part_stats = self.partition.as_ref().map(|plan| {
            let graph = InterferenceGraph::build(
                &self.module,
                &self.bindings(),
                self.mem_geometry(),
                &self.latency_model(),
            );
            (
                plan.clone(),
                graph.channel_edges.len() as u64,
                graph.bank_edges.len() as u64,
                graph.unbounded_tiles.len() as u64,
            )
        });
        let mut il = self.build()?;
        let cycles = il.run().map_err(MosaicError::Sim)?;
        let (steps_executed, cycles_skipped, skips_taken) = (
            il.steps_executed(),
            il.cycles_skipped(),
            il.skips_taken(),
        );
        let (mut tiles, mut mem, _channels) = il.into_parts();
        let tile_stats: Vec<TileStats> = tiles.iter().map(|t| t.stats().clone()).collect();
        let mem_stats = mem.stats();
        let core_energy: f64 = tile_stats.iter().map(|t| t.energy_pj).sum();
        let total_area: f64 = areas.iter().sum();
        let total_retired: u64 = tile_stats.iter().map(|t| t.retired).sum();

        // Assemble the hierarchical registry. Registration reads the
        // tiles' and hierarchy's native hot-path counters, so this is
        // free at any observability level.
        let mut registry = StatsRegistry::new();
        for (slot, t) in tile_stats.iter().enumerate() {
            t.register_into(&mut registry, slot);
        }
        mem.register_into(&mut registry);
        registry.set_counter("sim.cycles", cycles);
        registry.set_counter("sim.retired", total_retired);
        if cycles > 0 {
            registry.set_gauge("sim.ipc", total_retired as f64 / cycles as f64);
        }
        // Scheduler diagnostics: the one registry namespace that is
        // *intentionally* mode-dependent (naive stepping executes every
        // cycle, fast-forward skips provably-idle ones).
        registry.set_counter("sim.ff.steps_executed", steps_executed);
        registry.set_counter("sim.ff.cycles_skipped", cycles_skipped);
        registry.set_counter("sim.ff.skips_taken", skips_taken);
        // Static partitioning summary (only when a plan is attached):
        // shard layout quality plus interference-graph size, so sweep
        // reports can correlate BSP epoch length with dynamic behavior.
        if let Some((plan, ch_edges, bank_edges, unbounded)) = part_stats {
            registry.set_counter("part.shards", plan.shards.len() as u64);
            registry.set_counter("part.cut_weight", plan.cut_weight);
            registry.set_counter("part.internal_weight", plan.internal_weight);
            if plan.epoch_horizon != u64::MAX {
                registry.set_counter("part.epoch_horizon", plan.epoch_horizon);
            }
            registry.set_counter("part.graph.channel_edges", ch_edges);
            registry.set_counter("part.graph.bank_edges", bank_edges);
            registry.set_counter("part.graph.unbounded_tiles", unbounded);
        }

        let mut timeline = Timeline::new();
        if observe.trace_on() {
            for (slot, tile) in tiles.iter_mut().enumerate() {
                timeline.merge(tile.take_timeline(slot));
            }
            timeline.merge(mem.take_timeline());
        }
        let mut profile = IrProfile::new();
        if observe.stats_on() {
            for tile in tiles.iter_mut() {
                profile.merge(&tile.take_profile());
            }
        }

        Ok(SimReport {
            cycles,
            total_retired,
            tiles: tile_stats,
            mem: mem_stats,
            dram_throttled: mem.dram_throttled_cycles(),
            core_energy_pj: core_energy,
            mem_energy_pj: energy.memory_energy_pj(&mem_stats),
            static_energy_pj: energy.static_energy_pj(total_area, cycles),
            registry,
            timeline,
            profile,
        })
    }
}

#[cfg(test)]
mod lint_gate_tests {
    //! The pre-simulation lint gate: `Deny` turns static findings into
    //! [`MosaicError::Lint`] before any cycle runs; `Warn` (the default)
    //! reports but still builds.

    use std::sync::Arc;

    use mosaic_ir::{Constant, FunctionBuilder, MemImage, Module, TileProgram, Type};
    use mosaic_tile::CoreConfig;

    use super::SystemBuilder;
    use crate::error::MosaicError;
    use crate::{record_trace, LintLevel};

    /// Producer/consumer pair: one value over channel q0. The trace is
    /// recorded with matched offsets; the builder then misconfigures the
    /// consumer's queue offset, which only the static gate can catch
    /// before simulation.
    fn chatter_system() -> SystemBuilder {
        let mut m = Module::new("chatter");
        let p = m.add_function("produce", vec![], Type::Void);
        let mut b = FunctionBuilder::new(m.function_mut(p));
        let e = b.create_block("entry");
        b.switch_to(e);
        b.send(0, Constant::i64(42).into());
        b.ret(None);
        let c = m.add_function("consume", vec![], Type::Void);
        let mut b = FunctionBuilder::new(m.function_mut(c));
        let e = b.create_block("entry");
        b.switch_to(e);
        b.recv(0, Type::I64);
        b.ret(None);
        mosaic_ir::verify_module(&m).expect("verify");
        let programs = vec![
            TileProgram::single(p, vec![]),
            TileProgram::single(c, vec![]),
        ];
        let (trace, _) = record_trace(&m, MemImage::new(), &programs).expect("trace");
        SystemBuilder::new(Arc::new(m), Arc::new(trace))
            .core(CoreConfig::in_order().with_name("produce"), p, 0)
            .core(
                CoreConfig::in_order()
                    .with_name("consume")
                    .with_queue_offset(7),
                c,
                1,
            )
    }

    #[test]
    fn deny_returns_lint_error_not_a_panic() {
        match chatter_system().lint(LintLevel::Deny).build() {
            Err(MosaicError::Lint(report)) => {
                assert!(report.error_count() >= 2, "{report}");
                let text = report.to_string();
                assert!(text.contains("q0") && text.contains("q7"), "{text}");
            }
            Ok(_) => panic!("misconfigured system passed the deny gate"),
            Err(other) => panic!("wrong error type: {other}"),
        }
    }

    #[test]
    fn warn_still_builds_and_off_skips() {
        chatter_system()
            .lint(LintLevel::Warn)
            .build()
            .expect("warn level must not fail the build");
        chatter_system()
            .lint(LintLevel::Off)
            .build()
            .expect("off level must not fail the build");
    }
}

#[cfg(test)]
mod validation_tests {
    //! Every rejected configuration must name the offending field so the
    //! error is actionable without reading simulator source.

    use std::sync::Arc;

    use mosaic_ir::{FunctionBuilder, MemImage, Module, TileProgram, Type};
    use mosaic_mem::{CacheConfig, DramKind, SimpleDramConfig};
    use mosaic_tile::{ChannelConfig, CoreConfig};

    use super::SystemBuilder;
    use crate::error::MosaicError;
    use crate::record_trace;

    /// A builder over a trivial one-tile kernel (empty body, immediate
    /// return) so validation is the only thing under test.
    fn builder() -> (SystemBuilder, mosaic_ir::FuncId) {
        let mut m = Module::new("v");
        let f = m.add_function("k", vec![], Type::Void);
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let e = b.create_block("entry");
        b.switch_to(e);
        b.ret(None);
        mosaic_ir::verify_module(&m).expect("verify");
        let programs = vec![TileProgram::single(f, vec![])];
        let (trace, _) = record_trace(&m, MemImage::new(), &programs).expect("trace");
        (
            SystemBuilder::new(Arc::new(m), Arc::new(trace)),
            f,
        )
    }

    /// Unwraps the expected rejection and returns (field, message).
    fn rejects(b: SystemBuilder) -> (String, String) {
        match b.build() {
            Err(MosaicError::InvalidConfig { field, message }) => (field, message),
            Ok(_) => panic!("config was accepted"),
            Err(other) => panic!("wrong error type: {other}"),
        }
    }

    #[test]
    fn zero_capacity_channel_is_rejected() {
        let (b, f) = builder();
        let b = b
            .channels(ChannelConfig {
                capacity: 0,
                latency: 1,
            })
            .core(CoreConfig::in_order(), f, 0);
        let (field, message) = rejects(b);
        assert_eq!(field, "channel.capacity");
        assert!(message.contains("zero-capacity"), "{message}");
    }

    #[test]
    fn zero_clock_divisor_is_rejected() {
        let (b, f) = builder();
        let mut config = CoreConfig::in_order().with_name("stuck");
        config.clock_divisor = 0;
        let (field, message) = rejects(b.core(config, f, 0));
        assert_eq!(field, "core.clock_divisor");
        assert!(message.contains("stuck"), "{message}");
    }

    #[test]
    fn untileable_cache_size_is_rejected() {
        let (b, f) = builder();
        let mut memory = crate::small_memory();
        // 10000 bytes over 64B lines x 8 ways leaves a fractional set.
        memory.l1 = CacheConfig::new("L1", 10_000);
        let (field, message) = rejects(b.memory(memory).core(CoreConfig::in_order(), f, 0));
        assert_eq!(field, "memory.l1.size_bytes");
        assert!(message.contains("10000"), "{message}");
    }

    #[test]
    fn zero_bandwidth_dram_is_rejected() {
        let (b, f) = builder();
        let mut memory = crate::small_memory();
        memory.dram = DramKind::Simple(SimpleDramConfig {
            min_latency: 100,
            epoch_cycles: 128,
            max_per_epoch: 0,
        });
        let (field, message) = rejects(b.memory(memory).core(CoreConfig::in_order(), f, 0));
        assert_eq!(field, "memory.dram.max_per_epoch");
        assert!(message.contains("no"), "{message}");
    }

    #[test]
    fn out_of_range_trace_tile_is_rejected() {
        let (b, f) = builder();
        let (field, message) = rejects(b.core(CoreConfig::in_order(), f, 3));
        assert_eq!(field, "core.trace_tile");
        assert!(message.contains('3'), "{message}");
    }

    #[test]
    fn paper_presets_validate() {
        for memory in [crate::small_memory(), crate::xeon_memory(), crate::dae_memory()] {
            let (b, f) = builder();
            b.memory(memory)
                .core(CoreConfig::out_of_order(), f, 0)
                .build()
                .expect("paper preset must validate");
        }
    }
}

#[cfg(test)]
mod partition_tests {
    //! Builder-side partition planning: plan computation, validation
    //! against the configured geometry, and registry export.

    use std::sync::Arc;

    use mosaic_ir::{Constant, FunctionBuilder, MemImage, Module, TileProgram, Type};
    use mosaic_tile::CoreConfig;

    use super::SystemBuilder;
    use crate::error::MosaicError;
    use crate::record_trace;

    /// Producer/consumer pair with *matched* queue offsets: a clean
    /// system whose only interference is the q0 channel edge.
    fn chatter() -> SystemBuilder {
        let mut m = Module::new("chatter");
        let p = m.add_function("produce", vec![], Type::Void);
        let mut b = FunctionBuilder::new(m.function_mut(p));
        let e = b.create_block("entry");
        b.switch_to(e);
        b.send(0, Constant::i64(42).into());
        b.ret(None);
        let c = m.add_function("consume", vec![], Type::Void);
        let mut b = FunctionBuilder::new(m.function_mut(c));
        let e = b.create_block("entry");
        b.switch_to(e);
        b.recv(0, Type::I64);
        b.ret(None);
        mosaic_ir::verify_module(&m).expect("verify");
        let programs = vec![
            TileProgram::single(p, vec![]),
            TileProgram::single(c, vec![]),
        ];
        let (trace, _) = record_trace(&m, MemImage::new(), &programs).expect("trace");
        SystemBuilder::new(Arc::new(m), Arc::new(trace))
            .core(CoreConfig::in_order().with_name("produce"), p, 0)
            .core(CoreConfig::in_order().with_name("consume"), c, 1)
    }

    #[test]
    fn computed_plan_validates_and_round_trips() {
        let b = chatter();
        let plan = b.compute_partition_plan(2).expect("plan");
        assert_eq!(plan.tiles, 2);
        assert_eq!(plan.shards.len(), 2);
        // No memory traffic: the only cross-shard path is the channel,
        // whose delivery bound includes the channel latency.
        assert!(plan.epoch_horizon >= 1, "horizon {}", plan.epoch_horizon);
        let back =
            mosaic_part::PartitionPlan::from_json(&plan.to_json()).expect("parses");
        assert_eq!(back, plan);
        // Attach and run: the registry carries the part.* summary.
        let report = b.partition_plan(plan).expect("attach").run().expect("run");
        assert_eq!(report.registry.counter("part.shards"), 2);
        assert_eq!(report.registry.counter("part.graph.channel_edges"), 1);
        assert_eq!(
            report.registry.counter("part.epoch_horizon"),
            report.registry.counter("part.epoch_horizon").max(1)
        );
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let b = chatter();
        let mut plan = b.compute_partition_plan(2).expect("plan");
        plan.shards[0].tiles.clear();
        match b.partition_plan(plan) {
            Err(MosaicError::InvalidConfig { field, .. }) => {
                assert_eq!(field, "partition.plan");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn no_tiles_cannot_be_partitioned() {
        let b = chatter();
        // A fresh builder with no cores.
        let empty = SystemBuilder::new(b.module.clone(), b.trace.clone());
        assert!(empty.compute_partition_plan(2).is_err());
    }
}
