//! The Interleaver (paper §II, Fig. 2).
//!
//! "Tiles operate alongside each other, each being called upon by the
//! Interleaver to take a single-cycle step. ... Distinct tiles may use
//! different notions of execution timing and are modeled to operate
//! concurrently. The Interleaver queries tiles to advance them through the
//! next time unit of execution. Tiles may run at different clock speeds,
//! so the Interleaver queries and coordinates their events accordingly."
//!
//! Each global cycle the Interleaver: steps the memory hierarchy, routes
//! memory completions back to the issuing tiles, and steps every tile
//! whose clock divides the current cycle. Inter-tile messages flow through
//! the [`ChannelSet`]; accelerator invocations dispatch to the configured
//! [`AccelSim`] (paper §IV-A).

use mosaic_mem::{Completion, MemoryHierarchy};
use mosaic_obs::ObsLevel;
use mosaic_tile::{AccelSim, ChannelSet, Horizon, Tile, TileCtx, TileError, TileStallInfo};

/// One channel's state at the moment a stall was diagnosed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSnapshot {
    /// Hardware queue id.
    pub queue: u32,
    /// Entries currently buffered.
    pub occupancy: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Total successful sends so far.
    pub sends: u64,
    /// Total successful receives so far.
    pub recvs: u64,
}

impl std::fmt::Display for ChannelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "channel {}: {}/{} occupied, {} sends, {} recvs",
            self.queue, self.occupancy, self.capacity, self.sends, self.recvs
        )
    }
}

/// What every unfinished tile was waiting on when the simulation stopped
/// making progress — the wait-for evidence behind a
/// [`SimError::Deadlock`] verdict.
///
/// The snapshot holds only architectural state (blocked reasons, path
/// positions, channel occupancies, in-flight memory requests), never
/// mode-dependent diagnostics, so the fast-forwarding and naive schedulers
/// produce bit-identical snapshots for the same deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSnapshot {
    /// First cycle at which no tile or memory event could occur any more
    /// (one past the last cycle that made observable progress).
    pub cycle: u64,
    /// Per-tile blocked reasons, in tile order (unfinished tiles only).
    pub tiles: Vec<TileStallInfo>,
    /// Every channel that has been touched, sorted by queue id.
    pub channels: Vec<ChannelSnapshot>,
    /// Memory requests still tracked by the hierarchy.
    pub mem_in_flight: usize,
}

impl std::fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "no progress possible after cycle {}:", self.cycle)?;
        for t in &self.tiles {
            writeln!(f, "  {t}")?;
        }
        for c in &self.channels {
            writeln!(f, "  {c}")?;
        }
        write!(f, "  memory: {} requests in flight", self.mem_in_flight)
    }
}

/// Errors produced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle cap was reached while tiles were still making progress —
    /// the run is live but slower than the configured budget.
    CycleLimit {
        /// The cap that was hit.
        limit: u64,
        /// Names of the tiles that had not finished.
        unfinished: Vec<String>,
    },
    /// Every unfinished tile is blocked on a condition no other party can
    /// ever satisfy (circular channel waits, mismatched produce/consume
    /// counts, a send into a queue nobody drains). Detected by the
    /// event-horizon survey under fast-forwarding and by the no-progress
    /// watchdog under naive stepping; both report the same snapshot.
    Deadlock {
        /// The wait-for evidence, rendered by `Display`.
        snapshot: StallSnapshot,
    },
    /// A tile detected malformed input (trace/kernel mismatch, missing
    /// accelerator, out-of-range memory target) and aborted the run.
    Tile {
        /// Name of the tile that failed.
        tile: String,
        /// What it tripped over.
        source: TileError,
    },
    /// A periodic checkpoint could not be written. Carries the rendered
    /// [`mosaic_ckpt::CkptError`] (the source holds an `std::io::Error`
    /// and cannot live in this `Clone + Eq` taxonomy directly).
    Checkpoint {
        /// What went wrong, including the destination path.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { limit, unfinished } => write!(
                f,
                "simulation exceeded {limit} cycles with unfinished tiles {unfinished:?}"
            ),
            SimError::Deadlock { snapshot } => {
                write!(f, "deadlock: {snapshot}")
            }
            SimError::Tile { source, .. } => write!(f, "{source}"),
            SimError::Checkpoint { message } => {
                write!(f, "checkpoint write failed: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Tile { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The cycle-driven scheduler composing tiles, memory, channels, and
/// accelerators into whole-system estimates.
pub struct Interleaver {
    tiles: Vec<Box<dyn Tile>>,
    mem: MemoryHierarchy,
    channels: ChannelSet,
    accel: Box<dyn AccelSim>,
    cycle_limit: u64,
    now: u64,
    fast_forward: bool,
    /// Tiles that have finished (kept as a running count so the per-cycle
    /// done check is O(1) instead of a scan over all tiles).
    finished: usize,
    /// Reused completion-delivery buffer (avoids a per-cycle allocation).
    completion_buf: Vec<Completion>,
    /// Whether the last `step` did no observable work (no completions
    /// delivered, no tile counter advanced). Purely a heuristic gate for
    /// when to attempt a skip: skipping is identity-preserving whenever
    /// invoked, so a wrong value costs performance, never correctness.
    quiet: bool,
    /// Cycles actually stepped (diagnostics; compare against `now`).
    steps_executed: u64,
    /// Cycles jumped over by the fast-forward scheduler (diagnostics).
    cycles_skipped: u64,
    /// Fast-forward jumps taken (diagnostics).
    skips_taken: u64,
    /// Last cycle whose step made observable progress. Drives the
    /// `blocked at cycle` verdict: the deadlock cycle is one past this,
    /// identical under fast-forward and naive stepping because both
    /// execute every progress cycle.
    last_progress_at: Option<u64>,
    /// Consecutive quiet steps before the naive-path watchdog surveys the
    /// system for a deadlock (see [`Self::set_watchdog_window`]).
    watchdog_window: u64,
    /// Quiet steps seen since the last progress or watchdog survey.
    quiet_streak: u64,
    /// Whether the previous loop iteration took a fast-forward jump.
    /// Loop-carried (not local to `run`) so a paused run resumes with
    /// exactly the survey cadence a straight-through run would have had.
    just_skipped: bool,
    /// Write a checkpoint roughly every this many cycles (at the first
    /// stepped cycle at or past each boundary). `None` disables.
    ckpt_every: Option<u64>,
    /// Destination for periodic checkpoints.
    ckpt_path: Option<std::path::PathBuf>,
    /// Next checkpoint boundary.
    next_ckpt: u64,
}

/// Smallest multiple of `d` that is `>= x`.
fn align_up(x: u64, d: u64) -> u64 {
    x.div_ceil(d) * d
}

impl std::fmt::Debug for Interleaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleaver")
            .field("tiles", &self.tiles.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Interleaver {
    /// Assembles an interleaver. Tile order must match the memory
    /// hierarchy's private-cache slots (tile `i` uses slot `i`).
    pub fn new(
        tiles: Vec<Box<dyn Tile>>,
        mem: MemoryHierarchy,
        channels: ChannelSet,
        accel: Box<dyn AccelSim>,
    ) -> Self {
        let finished = tiles.iter().filter(|t| t.is_done()).count();
        Interleaver {
            tiles,
            mem,
            channels,
            accel,
            cycle_limit: 2_000_000_000,
            now: 0,
            fast_forward: true,
            finished,
            completion_buf: Vec::new(),
            quiet: false,
            steps_executed: 0,
            cycles_skipped: 0,
            skips_taken: 0,
            last_progress_at: None,
            watchdog_window: 10_000,
            quiet_streak: 0,
            just_skipped: false,
            ckpt_every: None,
            ckpt_path: None,
            next_ckpt: u64::MAX,
        }
    }

    /// Cycles actually stepped so far (fast-forward diagnostics).
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Cycles jumped over by fast-forwarding so far.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Fast-forward jumps taken so far.
    pub fn skips_taken(&self) -> u64 {
        self.skips_taken
    }

    /// Sets the runaway-protection cycle cap.
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// Sets how many consecutive quiet cycles the naive stepper tolerates
    /// before surveying the system for a deadlock (default 10 000). Only a
    /// detection *latency* knob: the verdict and its snapshot are the same
    /// for any window, because the blocked cycle is derived from the last
    /// progress cycle, not from when the watchdog fired. Under
    /// fast-forwarding the survey happens at every skip attempt instead,
    /// so the window is unused.
    pub fn set_watchdog_window(&mut self, window: u64) {
        self.watchdog_window = window.max(1);
    }

    /// Sets the observability level on every tile and the memory
    /// hierarchy. At [`ObsLevel::Off`] (the default) the hot path pays
    /// nothing; see `DESIGN.md` §4.5 for the overhead contract.
    pub fn set_observe(&mut self, level: ObsLevel) {
        for tile in &mut self.tiles {
            tile.set_observe(level);
        }
        self.mem.set_observe(level);
    }

    /// Enables or disables event-horizon fast-forwarding in [`Self::run`]
    /// (on by default). Fast-forwarding skips cycles in which provably no
    /// tile or memory event can occur; results are bit-identical to the
    /// naive cycle-by-cycle stepper, so disabling it is only useful for
    /// differential testing and for debugging with per-cycle stepping.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether event-horizon fast-forwarding is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// The current global cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The tiles (for stats inspection).
    pub fn tiles(&self) -> &[Box<dyn Tile>] {
        &self.tiles
    }

    /// The memory hierarchy (for stats inspection).
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// The channel set (for stats inspection).
    pub fn channels(&self) -> &ChannelSet {
        &self.channels
    }

    /// Advances one global cycle. Returns whether all tiles are done.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Tile`] when a tile rejects its input (trace
    /// underrun, missing accelerator, out-of-range memory target).
    pub fn step(&mut self) -> Result<bool, SimError> {
        let now = self.now;
        self.mem.step(now);
        self.mem.drain_completions_into(&mut self.completion_buf);
        let mut progress = !self.completion_buf.is_empty();
        for c in self.completion_buf.drain(..) {
            if let Some(tile) = self.tiles.get_mut(c.tile) {
                tile.on_mem_completion(c.id, now);
            }
        }
        for tile in &mut self.tiles {
            if tile.is_done() {
                continue;
            }
            if !now.is_multiple_of(tile.clock_divisor()) {
                continue;
            }
            let mark = tile.progress_mark();
            let mut ctx = TileCtx {
                now,
                mem: &mut self.mem,
                channels: &mut self.channels,
                accel: self.accel.as_mut(),
            };
            tile.step(&mut ctx).map_err(|source| SimError::Tile {
                tile: tile.name().to_string(),
                source,
            })?;
            progress |= tile.progress_mark() != mark;
            if tile.is_done() {
                self.finished += 1;
            }
        }
        self.quiet = !progress;
        if progress {
            self.last_progress_at = Some(now);
        }
        self.steps_executed += 1;
        self.now += 1;
        Ok(self.finished == self.tiles.len())
    }

    /// First cycle at which nothing could happen any more: one past the
    /// last cycle whose step made observable progress.
    fn blocked_at(&self) -> u64 {
        self.last_progress_at.map_or(0, |c| c + 1)
    }

    /// Collects the wait-for evidence for a deadlock verdict. Queried at
    /// the blocked cycle (not the detection cycle, which differs between
    /// the fast-forwarding and naive schedulers) so both modes report
    /// bit-identical snapshots: once every party is blocked the state the
    /// snapshot reads is frozen.
    fn stall_snapshot(&self) -> StallSnapshot {
        let blocked_at = self.blocked_at();
        let tiles = self
            .tiles
            .iter()
            .filter(|t| !t.is_done())
            .map(|t| t.stall_info(blocked_at, &self.channels))
            .collect();
        // Channels live in a hash map; sort for a deterministic report.
        let mut channels: Vec<ChannelSnapshot> = self
            .channels
            .iter()
            .map(|(queue, ch)| ChannelSnapshot {
                queue,
                occupancy: ch.occupancy(),
                capacity: ch.config().capacity,
                sends: ch.sends(),
                recvs: ch.recvs(),
            })
            .collect();
        channels.sort_by_key(|c| c.queue);
        StallSnapshot {
            cycle: blocked_at,
            tiles,
            channels,
            mem_in_flight: self.mem.in_flight(),
        }
    }

    /// Surveys the system for a deadlock: every unfinished tile reports
    /// [`Horizon::Blocked`] (waiting on another party, not on time) and
    /// the memory hierarchy has no pending event, so no step at any future
    /// cycle can change anything. Returns the verdict with its snapshot,
    /// or `None` when some event can still occur.
    fn check_deadlock(&self) -> Option<SimError> {
        if self.finished == self.tiles.len() {
            return None;
        }
        let now = self.now;
        for tile in &self.tiles {
            if tile.is_done() {
                continue;
            }
            if !matches!(tile.next_event(now, &self.channels), Horizon::Blocked) {
                return None;
            }
        }
        if self.mem.next_event_cycle(now).is_some() {
            return None;
        }
        Some(SimError::Deadlock {
            snapshot: self.stall_snapshot(),
        })
    }

    /// Jumps `now` forward to the next cycle at which any tile or the
    /// memory hierarchy can make progress (the *event horizon*), crediting
    /// each skipped tile with the stall counters it would have accumulated.
    /// A no-op when some tile is ready on the very next cycle.
    ///
    /// The jump target is the minimum over (a) each unfinished tile's next
    /// event, aligned up to its clock divisor — exactly the next cycle the
    /// naive stepper would have stepped it with that event visible; (b)
    /// the memory hierarchy's next internal event; and (c) the cycle cap.
    /// Because no event of any kind lies in `[now, target)`, the naive
    /// stepper would have executed those cycles as pure no-ops except for
    /// per-cycle stall counters, which [`Tile::on_cycles_skipped`]
    /// restores — keeping cycle counts, per-tile stats, and energy
    /// bit-identical between both modes.
    ///
    /// # Errors
    ///
    /// When the survey finds *no* event anywhere — every unfinished tile
    /// blocked on another party and the memory hierarchy drained — the
    /// system can never move again: returns [`SimError::Deadlock`] with a
    /// [`StallSnapshot`] instead of spinning to the cycle cap.
    fn skip_to_horizon(&mut self) -> Result<(), SimError> {
        let now = self.now;
        let mut target = self.cycle_limit;
        let mut any_event = false;
        for tile in &self.tiles {
            if tile.is_done() {
                continue;
            }
            let div = tile.clock_divisor().max(1);
            let wake = match tile.next_event(now, &self.channels) {
                Horizon::Ready => align_up(now, div),
                Horizon::At(c) => align_up(c.max(now), div),
                Horizon::Blocked => continue,
            };
            any_event = true;
            target = target.min(wake);
            if target <= now {
                return Ok(());
            }
        }
        if let Some(e) = self.mem.next_event_cycle(now) {
            any_event = true;
            target = target.min(e.max(now));
        }
        if !any_event && self.finished < self.tiles.len() {
            return Err(SimError::Deadlock {
                snapshot: self.stall_snapshot(),
            });
        }
        if target <= now {
            return Ok(());
        }
        for tile in &mut self.tiles {
            if tile.is_done() {
                continue;
            }
            let div = tile.clock_divisor().max(1);
            let skipped = target.div_ceil(div).saturating_sub(now.div_ceil(div));
            if skipped > 0 {
                tile.on_cycles_skipped(now, skipped, &self.channels);
            }
        }
        self.cycles_skipped += target - now;
        self.skips_taken += 1;
        self.now = target;
        Ok(())
    }

    fn cycle_limit_error(&self) -> SimError {
        SimError::CycleLimit {
            limit: self.cycle_limit,
            unfinished: self
                .tiles
                .iter()
                .filter(|t| !t.is_done())
                .map(|t| t.name().to_string())
                .collect(),
        }
    }

    /// Runs until every tile drains, returning the completion cycle.
    ///
    /// With fast-forwarding enabled (the default) the run skips over
    /// provably event-free cycle spans; see [`Self::set_fast_forward`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when no tile or memory event can
    /// ever occur again (fast-forwarding detects this at the first failed
    /// skip attempt; the naive stepper via the no-progress watchdog — both
    /// report the same blocked cycle and snapshot),
    /// [`SimError::CycleLimit`] when the cap is hit while still live, and
    /// [`SimError::Tile`] when a tile rejects its input.
    pub fn run(&mut self) -> Result<u64, SimError> {
        match self.run_inner(None)? {
            Some(cycles) => Ok(cycles),
            None => unreachable!("run_inner pauses only when given a target cycle"),
        }
    }

    /// Runs until every tile drains *or* the global clock reaches
    /// `cycle`, whichever comes first. Returns `Some(completion cycle)`
    /// when the system finished, `None` when it paused at (or, under
    /// fast-forwarding, at the first stepped cycle past) the target.
    ///
    /// A paused interleaver is in exactly the state a straight-through
    /// run has at that point of its loop: calling [`Self::run`] (or
    /// `run_until` again) continues bit-identically, and
    /// [`Self::save_checkpoint`] captures the pause point so a fresh
    /// system can continue from it instead.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_until(&mut self, cycle: u64) -> Result<Option<u64>, SimError> {
        self.run_inner(Some(cycle))
    }

    fn run_inner(&mut self, until: Option<u64>) -> Result<Option<u64>, SimError> {
        loop {
            // Pause/checkpoint points sit at the top of the loop, before
            // the step at `now` executes: the captured state is the state
            // a straight-through run has at this exact point, which is
            // what makes resume-from-cycle-N bit-identical.
            if let Some(target) = until {
                if self.now >= target && self.finished < self.tiles.len() {
                    return Ok(None);
                }
            }
            self.maybe_checkpoint()?;
            if self.step()? {
                break;
            }
            if self.now >= self.cycle_limit {
                return Err(self.cycle_limit_error());
            }
            // Only pay for a horizon survey when a multi-cycle stall span
            // is plausible: after a cycle that did no observable work, or
            // right after a wake step while in a stall-dominated phase
            // (saving the one quiet step per span the first rule costs).
            // In busy phases the next step is productive anyway, so
            // surveying every cycle would be pure overhead.
            if self.fast_forward && (self.quiet || self.just_skipped) {
                let before = self.now;
                self.skip_to_horizon()?;
                self.just_skipped = self.now != before;
                if self.now >= self.cycle_limit {
                    return Err(self.cycle_limit_error());
                }
            } else {
                self.just_skipped = false;
                // Naive-path watchdog: after a window of steps with no
                // observable work, survey for a deadlock. The verdict is
                // window-independent (see `set_watchdog_window`).
                if self.quiet {
                    self.quiet_streak += 1;
                    if self.quiet_streak >= self.watchdog_window {
                        self.quiet_streak = 0;
                        if let Some(err) = self.check_deadlock() {
                            return Err(err);
                        }
                    }
                } else {
                    self.quiet_streak = 0;
                }
            }
        }
        // The completion cycle is the latest tile finish time.
        Ok(Some(
            self.tiles
                .iter()
                .filter_map(|t| t.stats().done_at)
                .max()
                .unwrap_or(self.now),
        ))
    }

    /// Enables periodic checkpointing: a snapshot is written to `path` at
    /// the first stepped cycle at or past every multiple of `every`
    /// (fast-forward jumps can land past a boundary; the write then
    /// happens at the landing cycle). The file is overwritten each time,
    /// so it always holds the most recent snapshot.
    pub fn set_checkpoint_policy(&mut self, every: u64, path: impl Into<std::path::PathBuf>) {
        let every = every.max(1);
        self.ckpt_every = Some(every);
        self.ckpt_path = Some(path.into());
        self.next_ckpt = self.now.div_ceil(every).max(1) * every;
    }

    fn maybe_checkpoint(&mut self) -> Result<(), SimError> {
        let Some(every) = self.ckpt_every else {
            return Ok(());
        };
        if self.now < self.next_ckpt {
            return Ok(());
        }
        while self.next_ckpt <= self.now {
            self.next_ckpt += every;
        }
        if let Some(path) = self.ckpt_path.clone() {
            self.save_checkpoint()
                .save(&path)
                .map_err(|e| SimError::Checkpoint {
                    message: e.to_string(),
                })?;
        }
        Ok(())
    }

    /// Snapshots the complete simulator state — every tile's
    /// architectural and microarchitectural state, channel queues with
    /// in-flight messages, the full memory hierarchy, and the scheduler's
    /// own loop-carried state — into a versioned [`mosaic_ckpt::Checkpoint`]
    /// container. The configuration is *not* captured: a resume rebuilds
    /// the system from the same configuration and overwrites only
    /// dynamic state (the tile-name fingerprint guards against resuming
    /// into a different topology).
    pub fn save_checkpoint(&self) -> mosaic_ckpt::Checkpoint {
        let fingerprint: Vec<String> =
            self.tiles.iter().map(|t| t.name().to_string()).collect();
        let mut ckpt = mosaic_ckpt::Checkpoint::new(self.now, fingerprint);
        let mut e = mosaic_ckpt::Enc::new();
        e.u64(self.now);
        e.bool(self.quiet);
        e.bool(self.just_skipped);
        e.u64(self.steps_executed);
        e.u64(self.cycles_skipped);
        e.u64(self.skips_taken);
        e.opt_u64(self.last_progress_at);
        e.u64(self.quiet_streak);
        ckpt.add_section("interleaver", e);
        let mut e = mosaic_ckpt::Enc::new();
        self.channels.encode_into(&mut e);
        ckpt.add_section("channels", e);
        let mut e = mosaic_ckpt::Enc::new();
        self.mem.save_state(&mut e);
        ckpt.add_section("mem", e);
        for (i, tile) in self.tiles.iter().enumerate() {
            let mut e = mosaic_ckpt::Enc::new();
            tile.save_state(&mut e);
            ckpt.add_section(&format!("tile.{i}"), e);
        }
        ckpt
    }

    /// Restores the state captured by [`Self::save_checkpoint`] into this
    /// interleaver, which must have been built from the same
    /// configuration (same tiles in the same order, same memory
    /// hierarchy, same kernel trace). Set the observability level
    /// *before* restoring so recorded profiles and timelines carry over.
    ///
    /// # Errors
    ///
    /// Returns [`mosaic_ckpt::CkptError::Mismatch`] when the tile-name
    /// fingerprint or a component's rebuilt configuration disagrees with
    /// the checkpoint, and `Truncated`/`Corrupt` for damaged payloads.
    pub fn restore_checkpoint(
        &mut self,
        ckpt: &mosaic_ckpt::Checkpoint,
    ) -> Result<(), mosaic_ckpt::CkptError> {
        let names: Vec<String> = self.tiles.iter().map(|t| t.name().to_string()).collect();
        if ckpt.fingerprint() != names.as_slice() {
            return Err(mosaic_ckpt::CkptError::mismatch(format!(
                "checkpoint was taken from tiles {:?}, this system has {:?}",
                ckpt.fingerprint(),
                names
            )));
        }
        let mut d = mosaic_ckpt::Dec::new(ckpt.require_section("interleaver")?);
        self.now = d.u64("interleaver now")?;
        if self.now != ckpt.cycle() {
            return Err(mosaic_ckpt::CkptError::corrupt(format!(
                "interleaver section cycle {} disagrees with header cycle {}",
                self.now,
                ckpt.cycle()
            )));
        }
        self.quiet = d.bool("interleaver quiet")?;
        self.just_skipped = d.bool("interleaver just_skipped")?;
        self.steps_executed = d.u64("interleaver steps_executed")?;
        self.cycles_skipped = d.u64("interleaver cycles_skipped")?;
        self.skips_taken = d.u64("interleaver skips_taken")?;
        self.last_progress_at = d.opt_u64("interleaver last_progress_at")?;
        self.quiet_streak = d.u64("interleaver quiet_streak")?;
        let mut d = mosaic_ckpt::Dec::new(ckpt.require_section("channels")?);
        self.channels.restore_from(&mut d)?;
        let mut d = mosaic_ckpt::Dec::new(ckpt.require_section("mem")?);
        self.mem.restore_state(&mut d)?;
        for (i, tile) in self.tiles.iter_mut().enumerate() {
            let name = format!("tile.{i}");
            let mut d = mosaic_ckpt::Dec::new(ckpt.require_section(&name)?);
            tile.restore_state(&mut d)?;
            if !d.is_exhausted() {
                return Err(mosaic_ckpt::CkptError::corrupt(format!(
                    "section {name} has {} bytes of trailing data",
                    d.remaining()
                )));
            }
        }
        self.finished = self.tiles.iter().filter(|t| t.is_done()).count();
        // Re-anchor the periodic-checkpoint boundary to the resumed clock.
        if let Some(every) = self.ckpt_every {
            self.next_ckpt = self.now.div_ceil(every).max(1) * every;
        }
        Ok(())
    }

    /// Consumes the interleaver, returning its parts for post-run
    /// inspection.
    pub fn into_parts(self) -> (Vec<Box<dyn Tile>>, MemoryHierarchy, ChannelSet) {
        (self.tiles, self.mem, self.channels)
    }
}
