//! The Interleaver (paper §II, Fig. 2).
//!
//! "Tiles operate alongside each other, each being called upon by the
//! Interleaver to take a single-cycle step. ... Distinct tiles may use
//! different notions of execution timing and are modeled to operate
//! concurrently. The Interleaver queries tiles to advance them through the
//! next time unit of execution. Tiles may run at different clock speeds,
//! so the Interleaver queries and coordinates their events accordingly."
//!
//! Each global cycle the Interleaver: steps the memory hierarchy, routes
//! memory completions back to the issuing tiles, and steps every tile
//! whose clock divides the current cycle. Inter-tile messages flow through
//! the [`ChannelSet`]; accelerator invocations dispatch to the configured
//! [`AccelSim`] (paper §IV-A).

use mosaic_mem::MemoryHierarchy;
use mosaic_tile::{AccelSim, ChannelSet, Tile, TileCtx};

/// Errors produced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle cap was reached before every tile drained — almost always
    /// a deadlocked channel pair or a trace/kernel mismatch.
    CycleLimit {
        /// The cap that was hit.
        limit: u64,
        /// Names of the tiles that had not finished.
        unfinished: Vec<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { limit, unfinished } => write!(
                f,
                "simulation exceeded {limit} cycles with unfinished tiles {unfinished:?}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// The cycle-driven scheduler composing tiles, memory, channels, and
/// accelerators into whole-system estimates.
pub struct Interleaver {
    tiles: Vec<Box<dyn Tile>>,
    mem: MemoryHierarchy,
    channels: ChannelSet,
    accel: Box<dyn AccelSim>,
    cycle_limit: u64,
    now: u64,
}

impl std::fmt::Debug for Interleaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleaver")
            .field("tiles", &self.tiles.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Interleaver {
    /// Assembles an interleaver. Tile order must match the memory
    /// hierarchy's private-cache slots (tile `i` uses slot `i`).
    pub fn new(
        tiles: Vec<Box<dyn Tile>>,
        mem: MemoryHierarchy,
        channels: ChannelSet,
        accel: Box<dyn AccelSim>,
    ) -> Self {
        Interleaver {
            tiles,
            mem,
            channels,
            accel,
            cycle_limit: 2_000_000_000,
            now: 0,
        }
    }

    /// Sets the runaway-protection cycle cap.
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// The current global cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The tiles (for stats inspection).
    pub fn tiles(&self) -> &[Box<dyn Tile>] {
        &self.tiles
    }

    /// The memory hierarchy (for stats inspection).
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// The channel set (for stats inspection).
    pub fn channels(&self) -> &ChannelSet {
        &self.channels
    }

    /// Advances one global cycle. Returns whether all tiles are done.
    pub fn step(&mut self) -> bool {
        let now = self.now;
        self.mem.step(now);
        for c in self.mem.drain_completions() {
            if let Some(tile) = self.tiles.get_mut(c.tile) {
                tile.on_mem_completion(c.id, now);
            }
        }
        for tile in &mut self.tiles {
            if tile.is_done() {
                continue;
            }
            if !now.is_multiple_of(tile.clock_divisor()) {
                continue;
            }
            let mut ctx = TileCtx {
                now,
                mem: &mut self.mem,
                channels: &mut self.channels,
                accel: self.accel.as_mut(),
            };
            tile.step(&mut ctx);
        }
        self.now += 1;
        self.tiles.iter().all(|t| t.is_done())
    }

    /// Runs until every tile drains, returning the completion cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the cap is hit first.
    pub fn run(&mut self) -> Result<u64, SimError> {
        while !self.step() {
            if self.now >= self.cycle_limit {
                return Err(SimError::CycleLimit {
                    limit: self.cycle_limit,
                    unfinished: self
                        .tiles
                        .iter()
                        .filter(|t| !t.is_done())
                        .map(|t| t.name().to_string())
                        .collect(),
                });
            }
        }
        // The completion cycle is the latest tile finish time.
        Ok(self
            .tiles
            .iter()
            .filter_map(|t| t.stats().done_at)
            .max()
            .unwrap_or(self.now))
    }

    /// Consumes the interleaver, returning its parts for post-run
    /// inspection.
    pub fn into_parts(self) -> (Vec<Box<dyn Tile>>, MemoryHierarchy, ChannelSet) {
        (self.tiles, self.mem, self.channels)
    }
}
