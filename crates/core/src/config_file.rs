//! Configuration files (paper §VI-B).
//!
//! "MosaicSim provides a comprehensive set of both core and system
//! configuration files that include a number of reconfigurable parameters
//! (e.g. ROB size, issue-width, memory hierarchy details, etc.). These
//! are straightforward to modify or extend."
//!
//! The format is a flat `key = value` file with `#` comments. Unknown
//! keys are errors (typos should not silently fall back to defaults).
//! Two example files ship in the repository's `configs/` directory.
//!
//! # Examples
//!
//! ```
//! use mosaic_core::parse_system_config;
//!
//! let text = "
//! core.name = demo # a 2-wide core on a small memory system
//! core.issue_width = 2
//! core.window_size = 64
//! mem.l1.size_kb = 16
//! mem.dram.bandwidth_bytes_per_cycle = 16
//! ";
//! let (core, mem) = parse_system_config(text)?;
//! assert_eq!(core.issue_width, 2);
//! assert_eq!(mem.l1.size_bytes(), 16 * 1024);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::path::Path;

use mosaic_mem::{
    BankedDramConfig, CacheConfig, DramKind, HierarchyConfig, NocConfig, PrefetchConfig,
    SimpleDramConfig,
};
use mosaic_tile::{BranchMode, CoreConfig};

/// Errors from configuration parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A line was not `key = value` or a comment.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The key is not recognized.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unknown key.
        key: String,
    },
    /// The value failed to parse for its key.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key.
        key: String,
        /// The unparsable value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Malformed { line, text } => {
                write!(f, "line {line}: expected `key = value`, got `{text}`")
            }
            ConfigError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown configuration key `{key}`")
            }
            ConfigError::BadValue { line, key, value } => {
                write!(f, "line {line}: bad value `{value}` for `{key}`")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

struct Raw {
    line: usize,
    key: String,
    value: String,
}

fn tokenize(text: &str) -> Result<Vec<Raw>, ConfigError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let t = raw.split('#').next().unwrap_or("").trim();
        if t.is_empty() {
            continue;
        }
        let Some((k, v)) = t.split_once('=') else {
            return Err(ConfigError::Malformed {
                line,
                text: t.to_string(),
            });
        };
        out.push(Raw {
            line,
            key: k.trim().to_string(),
            value: v.trim().to_string(),
        });
    }
    Ok(out)
}

fn parse<T: std::str::FromStr>(r: &Raw) -> Result<T, ConfigError> {
    r.value.parse().map_err(|_| ConfigError::BadValue {
        line: r.line,
        key: r.key.clone(),
        value: r.value.clone(),
    })
}

fn parse_bool(r: &Raw) -> Result<bool, ConfigError> {
    match r.value.as_str() {
        "true" | "on" | "yes" | "1" => Ok(true),
        "false" | "off" | "no" | "0" => Ok(false),
        _ => Err(ConfigError::BadValue {
            line: r.line,
            key: r.key.clone(),
            value: r.value.clone(),
        }),
    }
}

/// Parses both a core and a memory configuration from one file. Keys not
/// present keep [`CoreConfig::out_of_order`] / [`crate::xeon_memory`]
/// defaults.
///
/// # Errors
///
/// Returns [`ConfigError`] on malformed lines, unknown keys, or bad
/// values.
pub fn parse_system_config(text: &str) -> Result<(CoreConfig, HierarchyConfig), ConfigError> {
    let mut core = CoreConfig::out_of_order();
    let mut mem = crate::xeon_memory();
    let mut l2 = mem.l2.clone();
    let mut dram_kind = "simple".to_string();
    let mut dram_latency: u64 = 180;
    let mut dram_bw: f64 = 21.25;
    let mut noc_width: u32 = 0;
    let mut noc_hop: u64 = 2;

    for r in tokenize(text)? {
        match r.key.as_str() {
            "core.name" => core.name = r.value.clone(),
            "core.issue_width" => core.issue_width = parse(&r)?,
            "core.window_size" => core.window_size = parse(&r)?,
            "core.lsq_size" => core.lsq_size = parse(&r)?,
            "core.branch" => {
                core.branch = match r.value.as_str() {
                    "none" => BranchMode::None,
                    "static" => BranchMode::Static,
                    "perfect" => BranchMode::Perfect,
                    "bimodal" => BranchMode::Bimodal,
                    _ => {
                        return Err(ConfigError::BadValue {
                            line: r.line,
                            key: r.key.clone(),
                            value: r.value.clone(),
                        })
                    }
                }
            }
            "core.mispredict_penalty" => core.mispredict_penalty = parse(&r)?,
            "core.alias_speculation" => core.alias_speculation = parse_bool(&r)?,
            "core.live_dbb_limit" => {
                let v: u32 = parse(&r)?;
                core.live_dbb_limit = (v > 0).then_some(v);
            }
            "core.clock_divisor" => core.clock_divisor = parse(&r)?,
            "core.area_mm2" => core.area_mm2 = parse(&r)?,
            "core.desc_extensions" => core.desc_extensions = parse_bool(&r)?,
            "core.desc_buffer" => core.desc_buffer = parse(&r)?,

            "mem.l1.size_kb" => {
                mem.l1 = CacheConfig::new("L1", parse::<u64>(&r)? * 1024)
                    .with_ways(mem.l1.ways())
                    .with_latency(mem.l1.latency());
            }
            "mem.l1.ways" => {
                mem.l1 = CacheConfig::new("L1", mem.l1.size_bytes())
                    .with_ways(parse(&r)?)
                    .with_latency(mem.l1.latency());
            }
            "mem.l1.latency" => {
                mem.l1 = CacheConfig::new("L1", mem.l1.size_bytes())
                    .with_ways(mem.l1.ways())
                    .with_latency(parse(&r)?);
            }
            "mem.l2.size_kb" => {
                let kb: u64 = parse(&r)?;
                l2 = (kb > 0).then(|| {
                    let prev = l2.clone().unwrap_or_else(|| CacheConfig::new("L2", 1024));
                    CacheConfig::new("L2", kb * 1024)
                        .with_ways(prev.ways())
                        .with_latency(prev.latency())
                });
            }
            "mem.l2.ways" | "mem.l2.latency" => {
                let prev = l2
                    .clone()
                    .unwrap_or_else(|| CacheConfig::new("L2", 2 * 1024 * 1024));
                l2 = Some(if r.key.ends_with("ways") {
                    CacheConfig::new("L2", prev.size_bytes())
                        .with_ways(parse(&r)?)
                        .with_latency(prev.latency())
                } else {
                    CacheConfig::new("L2", prev.size_bytes())
                        .with_ways(prev.ways())
                        .with_latency(parse(&r)?)
                });
            }
            "mem.llc.size_kb" => {
                mem.llc = CacheConfig::new("LLC", parse::<u64>(&r)? * 1024)
                    .with_ways(mem.llc.ways())
                    .with_latency(mem.llc.latency());
            }
            "mem.llc.ways" => {
                mem.llc = CacheConfig::new("LLC", mem.llc.size_bytes())
                    .with_ways(parse(&r)?)
                    .with_latency(mem.llc.latency());
            }
            "mem.llc.latency" => {
                mem.llc = CacheConfig::new("LLC", mem.llc.size_bytes())
                    .with_ways(mem.llc.ways())
                    .with_latency(parse(&r)?);
            }
            "mem.mshr_entries" => mem.mshr_entries = parse(&r)?,
            "mem.prefetch" => {
                mem.prefetch = if parse_bool(&r)? {
                    PrefetchConfig::default()
                } else {
                    PrefetchConfig::disabled()
                };
            }
            "mem.atomic_penalty" => mem.atomic_penalty = parse(&r)?,
            "mem.dram" => {
                dram_kind = r.value.clone();
                if dram_kind != "simple" && dram_kind != "banked" {
                    return Err(ConfigError::BadValue {
                        line: r.line,
                        key: r.key.clone(),
                        value: r.value.clone(),
                    });
                }
            }
            "mem.dram.latency" => dram_latency = parse(&r)?,
            "mem.dram.bandwidth_bytes_per_cycle" => dram_bw = parse(&r)?,
            "mem.noc.mesh_width" => noc_width = parse(&r)?,
            "mem.noc.hop_latency" => noc_hop = parse(&r)?,
            _ => {
                return Err(ConfigError::UnknownKey {
                    line: r.line,
                    key: r.key.clone(),
                })
            }
        }
    }

    mem.l2 = l2;
    mem.dram = if dram_kind == "banked" {
        DramKind::Banked(BankedDramConfig::default())
    } else {
        DramKind::Simple(SimpleDramConfig::from_bandwidth(dram_latency, dram_bw, 64))
    };
    mem.noc = (noc_width > 0).then_some(NocConfig {
        mesh_width: noc_width,
        hop_latency: noc_hop,
    });
    Ok((core, mem))
}

/// Loads a system configuration from a file.
///
/// # Errors
///
/// Returns I/O errors wrapped as [`ConfigError::Malformed`] on read
/// failure, or parse errors from [`parse_system_config`].
pub fn load_system_config(path: impl AsRef<Path>) -> Result<(CoreConfig, HierarchyConfig), ConfigError> {
    let text = std::fs::read_to_string(&path).map_err(|e| ConfigError::Malformed {
        line: 0,
        text: format!("{}: {e}", path.as_ref().display()),
    })?;
    parse_system_config(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_round_trip() {
        let text = "
            # DAE-style in-order core
            core.name = access
            core.issue_width = 1
            core.window_size = 1
            core.lsq_size = 1
            core.branch = static
            core.mispredict_penalty = 4
            core.alias_speculation = off
            core.area_mm2 = 1.01
            core.desc_extensions = on
            core.desc_buffer = 4

            mem.l1.size_kb = 32
            mem.l1.ways = 8
            mem.l1.latency = 1
            mem.l2.size_kb = 0        # no private L2
            mem.llc.size_kb = 2048
            mem.llc.ways = 8
            mem.llc.latency = 6
            mem.mshr_entries = 16
            mem.prefetch = on
            mem.atomic_penalty = 20
            mem.dram = simple
            mem.dram.latency = 200
            mem.dram.bandwidth_bytes_per_cycle = 12
        ";
        let (core, mem) = parse_system_config(text).unwrap();
        assert_eq!(core.name, "access");
        assert_eq!(core.issue_width, 1);
        assert_eq!(core.window_size, 1);
        assert_eq!(core.branch, BranchMode::Static);
        assert!(core.desc_extensions);
        assert_eq!(core.desc_buffer, 4);
        assert!(!core.alias_speculation);
        assert_eq!(mem.l1.size_bytes(), 32 * 1024);
        assert!(mem.l2.is_none());
        assert_eq!(mem.llc.size_bytes(), 2 * 1024 * 1024);
        assert_eq!(mem.llc.latency(), 6);
        // Matches dae_memory() on the load-bearing parameters (the
        // display name differs: config files call the shared level LLC).
        let reference = crate::dae_memory();
        assert_eq!(mem.llc.size_bytes(), reference.llc.size_bytes());
        assert_eq!(mem.llc.ways(), reference.llc.ways());
        assert_eq!(mem.llc.latency(), reference.llc.latency());
        assert_eq!(mem.dram, reference.dram);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = parse_system_config("core.isue_width = 4").unwrap_err();
        assert!(matches!(err, ConfigError::UnknownKey { line: 1, .. }));
    }

    #[test]
    fn bad_value_reports_line() {
        let err = parse_system_config("\ncore.issue_width = wide").unwrap_err();
        match err {
            ConfigError::BadValue { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_line_rejected() {
        let err = parse_system_config("just some words").unwrap_err();
        assert!(matches!(err, ConfigError::Malformed { .. }));
    }

    #[test]
    fn noc_and_banked_dram_options() {
        let (_, mem) = parse_system_config(
            "mem.dram = banked\nmem.noc.mesh_width = 4\nmem.noc.hop_latency = 3",
        )
        .unwrap();
        assert!(matches!(mem.dram, DramKind::Banked(_)));
        let noc = mem.noc.expect("noc configured");
        assert_eq!(noc.mesh_width, 4);
        assert_eq!(noc.hop_latency, 3);
    }

    #[test]
    fn shipped_config_files_parse() {
        for name in ["ooo_xeon.cfg", "dae_access.cfg"] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs/");
            let (core, _mem) =
                load_system_config(format!("{path}{name}")).unwrap_or_else(|e| {
                    panic!("shipped config {name} failed to parse: {e}")
                });
            assert!(!core.name.is_empty());
        }
    }
}
