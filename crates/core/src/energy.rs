//! System energy model (paper §III-B: instruction energy costs; §VII-C:
//! energy-delay-product comparisons).
//!
//! Core-side dynamic energy is accumulated per instruction by the tiles
//! (see [`mosaic_tile::CostTable`]) and per invocation by the accelerator
//! models. This module adds the memory-hierarchy dynamic energy (per
//! access at each level) and area-proportional static energy, and rolls
//! everything into joules and energy-delay product.

use mosaic_mem::MemStats;

/// Per-event memory energies and static power densities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per L1 access, pJ.
    pub l1_access_pj: f64,
    /// Energy per L2 access, pJ.
    pub l2_access_pj: f64,
    /// Energy per LLC access, pJ.
    pub llc_access_pj: f64,
    /// Energy per DRAM line transfer, pJ.
    pub dram_line_pj: f64,
    /// Static (leakage) power density, mW per mm² of core area.
    pub static_mw_per_mm2: f64,
    /// Clock frequency in GHz (converts cycles to seconds).
    pub freq_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 22 nm-class values in the spirit of McPAT (which the paper uses
        // for its area/power numbers).
        EnergyModel {
            l1_access_pj: 15.0,
            l2_access_pj: 45.0,
            llc_access_pj: 120.0,
            dram_line_pj: 2600.0,
            static_mw_per_mm2: 50.0,
            freq_ghz: 2.0,
        }
    }
}

impl EnergyModel {
    /// Memory-hierarchy dynamic energy for the given access counts, pJ.
    pub fn memory_energy_pj(&self, stats: &MemStats) -> f64 {
        let l1 = (stats.l1_hits + stats.l1_misses) as f64 * self.l1_access_pj;
        let l2 = (stats.l2_hits + stats.l2_misses) as f64 * self.l2_access_pj;
        let llc = (stats.llc_hits + stats.llc_misses) as f64 * self.llc_access_pj;
        let dram = (stats.dram_reads + stats.dram_writebacks) as f64 * self.dram_line_pj;
        l1 + l2 + llc + dram
    }

    /// Static energy of `area_mm2` of silicon active for `cycles`, pJ.
    pub fn static_energy_pj(&self, area_mm2: f64, cycles: u64) -> f64 {
        // mW * ns = pJ; one cycle = 1/freq ns.
        let ns = cycles as f64 / self.freq_ghz;
        self.static_mw_per_mm2 * area_mm2 * ns
    }

    /// Converts cycles to seconds at the model frequency.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self, total_energy_pj: f64, cycles: u64) -> f64 {
        total_energy_pj * 1e-12 * self.seconds(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_energy_sums_levels() {
        let m = EnergyModel::default();
        let stats = MemStats {
            l1_hits: 100,
            l1_misses: 10,
            l2_hits: 5,
            l2_misses: 5,
            llc_hits: 3,
            llc_misses: 2,
            dram_reads: 2,
            dram_writebacks: 1,
            atomics: 0,
            prefetches: 0,
        };
        let e = m.memory_energy_pj(&stats);
        let expected = 110.0 * 15.0 + 10.0 * 45.0 + 5.0 * 120.0 + 3.0 * 2600.0;
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn static_energy_scales_with_area_and_time() {
        let m = EnergyModel::default();
        let small = m.static_energy_pj(1.01, 1000);
        let big = m.static_energy_pj(8.44, 1000);
        assert!(big > small * 8.0);
        assert!(m.static_energy_pj(1.0, 2000) > m.static_energy_pj(1.0, 1000));
    }

    #[test]
    fn edp_has_joule_second_magnitude() {
        let m = EnergyModel::default();
        // 1 J over 1 s => 1 J·s.
        let edp = m.edp(1e12, 2_000_000_000);
        assert!((edp - 1.0).abs() < 1e-9);
    }
}
