//! End-to-end convenience pipeline: build IR → functional run (trace) →
//! timing simulation — the full MosaicSim flow of paper Fig. 3.

use std::sync::Arc;

use mosaic_ir::{ExecError, ExecOutcome, FuncId, MemImage, Module, RtVal, TileProgram};
use mosaic_mem::HierarchyConfig;
use mosaic_tile::CoreConfig;
use mosaic_trace::{KernelTrace, TraceRecorder};

use crate::error::MosaicError;
use crate::system::{SimReport, SystemBuilder};

/// Runs the Dynamic Trace Generator: functionally executes `programs`
/// over `mem`, recording the control-flow and memory traces
/// (paper §II-A).
///
/// # Errors
///
/// Propagates interpreter deadlocks, traps, and step-limit overruns.
pub fn record_trace(
    module: &Module,
    mem: MemImage,
    programs: &[TileProgram],
) -> Result<(KernelTrace, ExecOutcome), ExecError> {
    let mut rec = TraceRecorder::new(programs.len());
    let out = mosaic_ir::run_tiles(module, mem, programs, &mut rec)?;
    Ok((rec.finish(), out))
}

/// Traces and simulates an SPMD kernel on `n` identical cores sharing the
/// memory hierarchy (paper §II-B's SPMD model).
///
/// # Errors
///
/// Returns [`MosaicError`] if tracing or simulation fails.
///
/// # Examples
///
/// ```
/// use mosaic_core::{simulate_spmd, small_memory};
/// use mosaic_ir::{Module, FunctionBuilder, Type, Constant, BinOp, MemImage, RtVal};
/// use mosaic_tile::CoreConfig;
///
/// let mut m = Module::new("demo");
/// let f = m.add_function("k", vec![("p".into(), Type::Ptr), ("n".into(), Type::I64)], Type::Void);
/// let mut b = FunctionBuilder::new(m.function_mut(f));
/// let (p, n) = (b.param(0), b.param(1));
/// let e = b.create_block("entry");
/// b.switch_to(e);
/// // Each tile handles an interleaved slice of 0..n.
/// let tid = b.tile_id();
/// let nt = b.num_tiles();
/// let header = b.create_block("header");
/// let body = b.create_block("body");
/// let exit = b.create_block("exit");
/// b.br(header);
/// b.switch_to(header);
/// let (i, i_phi) = b.phi_incomplete(Type::I64);
/// let c = b.icmp(mosaic_ir::IntPredicate::Slt, i, n);
/// b.cond_br(c, body, exit);
/// b.switch_to(body);
/// let a = b.gep(p, i, 4);
/// let v = b.load(Type::I32, a);
/// let v2 = b.bin(BinOp::Add, v, Constant::i32(1).into());
/// b.store(a, v2);
/// let i2 = b.bin(BinOp::Add, i, nt);
/// b.br(header);
/// b.phi_add_incoming(i_phi, e, tid);
/// b.phi_add_incoming(i_phi, body, i2);
/// b.switch_to(exit);
/// b.ret(None);
/// mosaic_ir::verify_module(&m)?;
///
/// let mut img = MemImage::new();
/// let buf = img.alloc_i32(64);
/// let report = simulate_spmd(
///     m, f,
///     vec![RtVal::Int(buf as i64), RtVal::Int(64)],
///     img, 2,
///     CoreConfig::out_of_order(),
///     small_memory(),
/// )?;
/// assert!(report.cycles > 0);
/// assert_eq!(report.tiles.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate_spmd(
    module: Module,
    func: FuncId,
    args: Vec<RtVal>,
    mem_image: MemImage,
    n: usize,
    core: CoreConfig,
    memory: HierarchyConfig,
) -> Result<SimReport, MosaicError> {
    let programs = TileProgram::spmd(func, args, n);
    let (trace, _out) = record_trace(&module, mem_image, &programs)?;
    let module = Arc::new(module);
    let trace = Arc::new(trace);
    let mut builder = SystemBuilder::new(module, trace).memory(memory);
    for t in 0..n {
        let config = core.clone().with_name(&format!("{}#{t}", core.name));
        builder = builder.core(config, func, t);
    }
    builder.run()
}

/// Traces and simulates a kernel on a single core.
///
/// # Errors
///
/// Returns [`MosaicError`] if tracing or simulation fails.
pub fn simulate_single(
    module: Module,
    func: FuncId,
    args: Vec<RtVal>,
    mem_image: MemImage,
    core: CoreConfig,
    memory: HierarchyConfig,
) -> Result<SimReport, MosaicError> {
    simulate_spmd(module, func, args, mem_image, 1, core, memory)
}
