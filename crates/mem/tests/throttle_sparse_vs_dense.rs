//! Guards the fast-forward equivalence invariant of [`SimpleDram`]'s
//! bandwidth-throttle accounting: stepping the model *sparsely* — only at
//! the cycles `next_event_cycle` names, as the event-horizon scheduler
//! does — must produce the same completions **and** the same
//! `throttled_cycles` as stepping it on every cycle. The interesting case
//! is a throttle window no sparse step ever lands inside: request B below
//! is ready at cycle 30 but the 1-transfer/epoch cap holds it until cycle
//! 100, and the sparse schedule jumps straight from 20 to 100. The dense
//! stepper observes cycles 30..100 as throttled one by one; the sparse
//! stepper must credit the same 70 cycles analytically from queue + epoch
//! state, or bandwidth-bound kernel reports (paper §VI-A, SPMV) would
//! change with the fast-forward setting.
//!
//! Promoted from a PR 1 review repro (`tmp_throttle_repro.rs`), which
//! caught exactly this divergence.

use mosaic_mem::{SimpleDram, SimpleDramConfig};

fn config() -> SimpleDramConfig {
    SimpleDramConfig {
        min_latency: 10,
        epoch_cycles: 100,
        max_per_epoch: 1,
    }
}

#[test]
fn sparse_vs_dense_throttle_accounting() {
    // Dense (naive): step every cycle.
    let mut dense = SimpleDram::new(config());
    let mut dense_done = 0;
    let mut sparse = SimpleDram::new(config());
    let mut sparse_done = 0;

    // Request A at 0 (ready 10), request B at 20 (ready 30), cap 1/epoch.
    let id_a = mosaic_mem::ReqId(1);
    let id_b = mosaic_mem::ReqId(2);

    dense.enqueue(id_a, 0);
    sparse.enqueue(id_a, 0);
    for t in 0..=120u64 {
        if t == 20 {
            dense.enqueue(id_b, 20);
        }
        dense_done += dense.step(t).len();
    }

    // Sparse: step only at cycles the scheduler would execute:
    // t=0 (enqueue), t=10 (completion), t=20 (enqueue of B), then jump
    // to next_event_cycle.
    for t in [0u64, 10, 20] {
        if t == 20 {
            sparse.enqueue(id_b, 20);
        }
        sparse_done += sparse.step(t).len();
    }
    let next = sparse.next_event_cycle(21).expect("queue non-empty");
    sparse_done += sparse.step(next).len();
    // drain remaining cycles up to 120 the same sparse way
    let mut t = next;
    while let Some(n) = sparse.next_event_cycle(t + 1) {
        t = n;
        sparse_done += sparse.step(t).len();
        if t > 120 {
            break;
        }
    }

    assert_eq!(dense_done, sparse_done, "completions diverge");
    assert_eq!(
        dense.throttled_cycles(),
        sparse.throttled_cycles(),
        "throttle accounting diverges: dense={} sparse={}",
        dense.throttled_cycles(),
        sparse.throttled_cycles()
    );
}
