//! # mosaic-mem
//!
//! The memory hierarchy of MosaicSim-RS (paper §V): configurable private
//! and shared set-associative caches (write-back, write-allocate, fully
//! inclusive), per-cache MSHRs for request coalescing, a configurable
//! stream prefetcher, and two DRAM timing models — [`SimpleDram`]
//! (minimum latency + epoch bandwidth cap, the default) and [`BankedDram`]
//! (a row-buffer/bank-conflict model standing in for DRAMSim2).
//!
//! [`MemoryHierarchy`] composes them behind a cycle-driven request →
//! completion interface that the tile models use for every load, store,
//! and atomic. The simulator is timing-only: caches track tags, never
//! data (paper §V-A).
//!
//! # Examples
//!
//! ```
//! use mosaic_mem::{MemoryHierarchy, HierarchyConfig, MemReq, AccessKind};
//!
//! let mut hier = MemoryHierarchy::new(HierarchyConfig::default(), 1);
//! let id = hier.request(
//!     MemReq { tile: 0, addr: 0x8000, size: 8, kind: AccessKind::Read },
//!     0,
//! );
//! let mut cycle = 0;
//! let done = loop {
//!     hier.step(cycle);
//!     if let Some(c) = hier.drain_completions().into_iter().find(|c| c.id == id) {
//!         break c;
//!     }
//!     cycle += 1;
//! };
//! assert!(done.at_cycle >= 200); // cold miss pays the DRAM latency
//! ```

#![warn(missing_docs)]

mod banked;
mod cache;
mod hierarchy;
mod mshr;
mod prefetch;
mod req;
mod simple_dram;

pub use banked::{BankedDram, BankedDramConfig};
pub use cache::{Cache, CacheConfig, FillOutcome, LookupResult};
pub use hierarchy::{DramKind, HierarchyConfig, MemStats, MemoryHierarchy, NocConfig};
pub use mshr::{Mshr, MshrOutcome};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
pub use req::{AccessKind, Completion, MemReq, ReqId};
pub use simple_dram::{SimpleDram, SimpleDramConfig};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The cache never reports more hits+misses than accesses and the
        /// miss ratio is always within [0, 1].
        #[test]
        fn cache_counter_invariants(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut c = Cache::new(CacheConfig::new("p", 4096).with_ways(4));
            for a in &addrs {
                match c.access(*a, a % 3 == 0) {
                    LookupResult::Miss => { c.fill(*a, a % 3 == 0); }
                    LookupResult::Hit => {}
                }
            }
            prop_assert_eq!(c.hits() + c.misses(), c.accesses());
            prop_assert!((0.0..=1.0).contains(&c.miss_ratio()));
        }

        /// After filling a line it is always resident until evicted or
        /// invalidated — probing immediately after a fill must hit.
        #[test]
        fn fill_makes_resident(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut c = Cache::new(CacheConfig::new("p", 2048).with_ways(2));
            for a in &addrs {
                c.fill(*a, false);
                prop_assert!(c.probe(*a));
            }
        }

        /// A cache of N ways per set holds at most N distinct lines of the
        /// same set at once: filling N+1 conflicting lines evicts exactly one.
        #[test]
        fn associativity_bound(base in 0u64..1000) {
            let mut c = Cache::new(CacheConfig::new("p", 512).with_ways(2)); // 4 sets
            let stride = 4 * 64; // same set
            let lines: Vec<u64> = (0..3).map(|i| (base * 64 + i * stride) & !63).collect();
            let mut evicted = 0;
            for l in &lines {
                if c.fill(*l, false).evicted.is_some() {
                    evicted += 1;
                }
            }
            prop_assert_eq!(evicted, 1);
        }

        /// SimpleDRAM: every enqueued request eventually completes, never
        /// before its minimum latency, and per-epoch returns never exceed
        /// the configured cap.
        #[test]
        fn simple_dram_bandwidth_and_latency(
            n in 1usize..64,
            lat in 1u64..100,
            per_epoch in 1u32..16,
        ) {
            let epoch = 32u64;
            let mut d = SimpleDram::new(SimpleDramConfig {
                min_latency: lat,
                epoch_cycles: epoch,
                max_per_epoch: per_epoch,
            });
            for i in 0..n {
                d.enqueue(ReqId(i as u64), 0);
            }
            let mut t = 0u64;
            let mut completed = 0usize;
            let mut per_epoch_count = std::collections::HashMap::new();
            while completed < n {
                let done = d.step(t);
                for _ in &done {
                    prop_assert!(t >= lat);
                    *per_epoch_count.entry(t / epoch).or_insert(0u32) += 1;
                }
                completed += done.len();
                t += 1;
                prop_assert!(t < 1_000_000);
            }
            for (_, cnt) in per_epoch_count {
                prop_assert!(cnt <= per_epoch);
            }
            prop_assert!(d.is_idle());
        }

        /// The hierarchy completes every demand request exactly once.
        #[test]
        fn hierarchy_completes_all(
            addrs in proptest::collection::vec(0u64..65536, 1..100),
            tiles in 1usize..4,
        ) {
            let mut h = MemoryHierarchy::new(HierarchyConfig {
                prefetch: PrefetchConfig::disabled(),
                ..HierarchyConfig::default()
            }, tiles);
            let mut pending = std::collections::HashSet::new();
            for (i, a) in addrs.iter().enumerate() {
                let kind = match i % 3 {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Atomic,
                };
                let id = h.request(MemReq { tile: i % tiles, addr: *a, size: 4, kind }, i as u64);
                prop_assert!(pending.insert(id));
            }
            let mut t = addrs.len() as u64;
            while !pending.is_empty() {
                h.step(t);
                for c in h.drain_completions() {
                    prop_assert!(pending.remove(&c.id), "double completion of {:?}", c.id);
                }
                t += 1;
                prop_assert!(t < 1_000_000, "requests stuck");
            }
        }
    }
}
