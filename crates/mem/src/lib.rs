//! # mosaic-mem
//!
//! The memory hierarchy of MosaicSim-RS (paper §V): configurable private
//! and shared set-associative caches (write-back, write-allocate, fully
//! inclusive), per-cache MSHRs for request coalescing, a configurable
//! stream prefetcher, and two DRAM timing models — [`SimpleDram`]
//! (minimum latency + epoch bandwidth cap, the default) and [`BankedDram`]
//! (a row-buffer/bank-conflict model standing in for DRAMSim2).
//!
//! [`MemoryHierarchy`] composes them behind a cycle-driven request →
//! completion interface that the tile models use for every load, store,
//! and atomic. The simulator is timing-only: caches track tags, never
//! data (paper §V-A).
//!
//! # Examples
//!
//! ```
//! use mosaic_mem::{MemoryHierarchy, HierarchyConfig, MemReq, AccessKind};
//!
//! let mut hier = MemoryHierarchy::new(HierarchyConfig::default(), 1);
//! let id = hier.request(
//!     MemReq { tile: 0, addr: 0x8000, size: 8, kind: AccessKind::Read },
//!     0,
//! ).expect("tile 0 exists");
//! let mut cycle = 0;
//! let done = loop {
//!     hier.step(cycle);
//!     if let Some(c) = hier.drain_completions().into_iter().find(|c| c.id == id) {
//!         break c;
//!     }
//!     cycle += 1;
//! };
//! assert!(done.at_cycle >= 200); // cold miss pays the DRAM latency
//! ```

#![warn(missing_docs)]

mod banked;
mod cache;
mod hierarchy;
mod mshr;
mod prefetch;
mod req;
mod simple_dram;

pub use banked::{BankedDram, BankedDramConfig};
pub use cache::{Cache, CacheConfig, FillOutcome, LookupResult};
pub use hierarchy::{DramKind, HierarchyConfig, MemError, MemStats, MemoryHierarchy, NocConfig};
pub use mshr::{Mshr, MshrOutcome};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
pub use req::{AccessKind, Completion, MemReq, ReqId};
pub use simple_dram::{SimpleDram, SimpleDramConfig};

#[cfg(test)]
mod invariant_tests {
    //! Deterministic pseudo-random invariant checks (formerly proptest;
    //! rewritten against a fixed-seed generator so the crate has no
    //! external dev-dependencies).
    use super::*;

    /// SplitMix64 — a tiny seeded generator for the invariant sweeps.
    struct TestRng(u64);
    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
        }
    }

    fn addr_vec(r: &mut TestRng, max_len: usize, bound: u64) -> Vec<u64> {
        let len = 1 + r.below(max_len as u64 - 1) as usize;
        (0..len).map(|_| r.below(bound)).collect()
    }

    /// The cache never reports more hits+misses than accesses and the
    /// miss ratio is always within [0, 1].
    #[test]
    fn cache_counter_invariants() {
        let mut r = TestRng(1);
        for _case in 0..32 {
            let addrs = addr_vec(&mut r, 200, 1_000_000);
            let mut c = Cache::new(CacheConfig::new("p", 4096).with_ways(4));
            for a in &addrs {
                match c.access(*a, a % 3 == 0) {
                    LookupResult::Miss => {
                        c.fill(*a, a % 3 == 0);
                    }
                    LookupResult::Hit => {}
                }
            }
            assert_eq!(c.hits() + c.misses(), c.accesses());
            assert!((0.0..=1.0).contains(&c.miss_ratio()));
        }
    }

    /// After filling a line it is always resident until evicted or
    /// invalidated — probing immediately after a fill must hit.
    #[test]
    fn fill_makes_resident() {
        let mut r = TestRng(2);
        for _case in 0..32 {
            let addrs = addr_vec(&mut r, 200, 1_000_000);
            let mut c = Cache::new(CacheConfig::new("p", 2048).with_ways(2));
            for a in &addrs {
                c.fill(*a, false);
                assert!(c.probe(*a));
            }
        }
    }

    /// A cache of N ways per set holds at most N distinct lines of the
    /// same set at once: filling N+1 conflicting lines evicts exactly one.
    #[test]
    fn associativity_bound() {
        let mut r = TestRng(3);
        for _case in 0..64 {
            let base = r.below(1000);
            let mut c = Cache::new(CacheConfig::new("p", 512).with_ways(2)); // 4 sets
            let stride = 4 * 64; // same set
            let lines: Vec<u64> = (0..3).map(|i| (base * 64 + i * stride) & !63).collect();
            let mut evicted = 0;
            for l in &lines {
                if c.fill(*l, false).evicted.is_some() {
                    evicted += 1;
                }
            }
            assert_eq!(evicted, 1);
        }
    }

    /// SimpleDRAM: every enqueued request eventually completes, never
    /// before its minimum latency, and per-epoch returns never exceed
    /// the configured cap.
    #[test]
    fn simple_dram_bandwidth_and_latency() {
        let mut r = TestRng(4);
        for _case in 0..48 {
            let n = 1 + r.below(63) as usize;
            let lat = 1 + r.below(99);
            let per_epoch = 1 + r.below(15) as u32;
            let epoch = 32u64;
            let mut d = SimpleDram::new(SimpleDramConfig {
                min_latency: lat,
                epoch_cycles: epoch,
                max_per_epoch: per_epoch,
            });
            for i in 0..n {
                d.enqueue(ReqId(i as u64), 0);
            }
            let mut t = 0u64;
            let mut completed = 0usize;
            let mut per_epoch_count = std::collections::HashMap::new();
            while completed < n {
                let done = d.step(t);
                for _ in &done {
                    assert!(t >= lat);
                    *per_epoch_count.entry(t / epoch).or_insert(0u32) += 1;
                }
                completed += done.len();
                t += 1;
                assert!(t < 1_000_000);
            }
            for (_, cnt) in per_epoch_count {
                assert!(cnt <= per_epoch);
            }
            assert!(d.is_idle());
        }
    }

    /// The hierarchy completes every demand request exactly once.
    #[test]
    fn hierarchy_completes_all() {
        let mut r = TestRng(5);
        for _case in 0..24 {
            let addrs = addr_vec(&mut r, 100, 65536);
            let tiles = 1 + r.below(3) as usize;
            let mut h = MemoryHierarchy::new(
                HierarchyConfig {
                    prefetch: PrefetchConfig::disabled(),
                    ..HierarchyConfig::default()
                },
                tiles,
            );
            let mut pending = std::collections::HashSet::new();
            for (i, a) in addrs.iter().enumerate() {
                let kind = match i % 3 {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Atomic,
                };
                let id = h.request(
                    MemReq {
                        tile: i % tiles,
                        addr: *a,
                        size: 4,
                        kind,
                    },
                    i as u64,
                )
                .expect("tile in range");
                assert!(pending.insert(id));
            }
            let mut t = addrs.len() as u64;
            while !pending.is_empty() {
                h.step(t);
                for c in h.drain_completions() {
                    assert!(pending.remove(&c.id), "double completion of {:?}", c.id);
                }
                t += 1;
                assert!(t < 1_000_000, "requests stuck");
            }
        }
    }
}
