//! The composed memory hierarchy (paper §V).
//!
//! Per-tile private L1 (and optional private L2) caches in front of a
//! shared, inclusive LLC, backed by either [`SimpleDram`] or the banked
//! DRAM model. Each core tile "maintains a cache queue ordered with respect
//! to the cache hierarchy": requests enter at L1 and are forwarded on
//! misses; the LLC forwards to DRAM. MSHRs coalesce same-line requests at
//! every level; dirty evictions write back; LLC evictions back-invalidate
//! the private caches to preserve inclusion; a stream prefetcher watches
//! the demand stream at L1.
//!
//! Atomic read-modify-writes bypass the private caches and serialize at
//! the shared LLC — the paper notes atomics are "difficult to accurately
//! model" (§VI-A); this policy reproduces their limited scaling.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use mosaic_obs::{Log2Histogram, ObsLevel, StatsRegistry, Timeline};

use crate::banked::{BankedDram, BankedDramConfig};
use crate::cache::{Cache, CacheConfig};
use crate::mshr::{Mshr, MshrOutcome};
use crate::prefetch::{PrefetchConfig, StreamPrefetcher};
use crate::req::{AccessKind, Completion, MemReq, ReqId};
use crate::simple_dram::{SimpleDram, SimpleDramConfig};

/// Which DRAM model backs the LLC (paper §V-B offers both).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DramKind {
    /// SimpleDRAM: min latency + epoch bandwidth (default).
    Simple(SimpleDramConfig),
    /// Banked model with row-buffer timing (DRAMSim2 substitute).
    Banked(BankedDramConfig),
}

impl Default for DramKind {
    fn default() -> Self {
        DramKind::Simple(SimpleDramConfig::default())
    }
}

/// Mesh NoC between tiles and the shared level (paper §V-A: "ports can
/// be added to the abstract tile model to create a message module in
/// order to model NoCs"). Tiles sit on a `mesh_width`-wide grid; the
/// shared LLC sits at the mesh center; each Manhattan hop costs
/// `hop_latency` cycles, paid in both directions of every shared-level
/// transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Tiles per mesh row.
    pub mesh_width: u32,
    /// Cycles per hop.
    pub hop_latency: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            mesh_width: 4,
            hop_latency: 2,
        }
    }
}

impl NocConfig {
    /// Manhattan hop count from tile `tile` to the shared level (mesh
    /// center), at least 1.
    pub fn hops(&self, tile: usize) -> u64 {
        let w = self.mesh_width.max(1) as i64;
        let x = tile as i64 % w;
        let y = tile as i64 / w;
        let (cx, cy) = (w / 2, w / 2);
        ((x - cx).abs() + (y - cy).abs()).max(1) as u64
    }

    /// One-way latency from `tile` to the shared level.
    pub fn latency(&self, tile: usize) -> u64 {
        self.hops(tile) * self.hop_latency
    }
}

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Private L1 per tile.
    pub l1: CacheConfig,
    /// Optional private L2 per tile.
    pub l2: Option<CacheConfig>,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// MSHR entries per cache instance.
    pub mshr_entries: usize,
    /// Stream prefetcher configuration (observes L1 demand misses).
    pub prefetch: PrefetchConfig,
    /// DRAM model.
    pub dram: DramKind,
    /// Extra cycles an atomic pays for interconnect + serialization.
    pub atomic_penalty: u64,
    /// Optional mesh NoC between private caches and the shared level
    /// (`None` = ideal interconnect, the paper's default abstraction).
    pub noc: Option<NocConfig>,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new("L1", 32 * 1024).with_ways(8).with_latency(1),
            l2: Some(CacheConfig::new("L2", 2 * 1024 * 1024).with_ways(8).with_latency(6)),
            llc: CacheConfig::new("LLC", 20 * 1024 * 1024)
                .with_ways(20)
                .with_latency(20),
            mshr_entries: 16,
            prefetch: PrefetchConfig::default(),
            dram: DramKind::default(),
            atomic_penalty: 20,
            noc: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Level {
    L1,
    L2,
    Llc,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Lookup { id: ReqId, level: Level },
    DramEnqueue { id: ReqId },
}

#[derive(Debug, Clone, Copy)]
struct ReqState {
    tile: usize,
    line: u64,
    kind: AccessKind,
    writeback: bool,
}

/// Aggregate hierarchy statistics for reports and the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 hits (all tiles).
    pub l1_hits: u64,
    /// L1 misses (unique lines).
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Lines read from DRAM.
    pub dram_reads: u64,
    /// Lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Atomic operations processed.
    pub atomics: u64,
    /// Prefetch requests issued into the hierarchy.
    pub prefetches: u64,
}

/// Errors produced by the memory hierarchy for malformed requests.
///
/// Internal invariants (event bookkeeping, MSHR state) still assert; this
/// type covers only conditions reachable from bad *input*, so the
/// simulation core can surface them as recoverable failures instead of
/// aborting a whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A request named a tile with no private-cache slot.
    UnknownTile {
        /// The tile index the request carried.
        tile: usize,
        /// How many tiles the hierarchy was built for.
        tiles: usize,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::UnknownTile { tile, tiles } => write!(
                f,
                "memory request names tile {tile} but the hierarchy serves {tiles} tiles"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// The composed memory system.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Cache,
    l1_mshr: Vec<Mshr>,
    l2_mshr: Vec<Mshr>,
    llc_mshr: Mshr,
    prefetchers: Vec<StreamPrefetcher>,
    dram_simple: Option<SimpleDram>,
    dram_banked: Option<BankedDram>,
    dram_addr: HashMap<ReqId, u64>,
    events: BinaryHeap<Reverse<(u64, u64, Event)>>,
    seq: u64,
    next_id: u64,
    states: HashMap<ReqId, ReqState>,
    completions: Vec<Completion>,
    stats: MemStats,
    atomic_free_at: u64,
    obs: ObsLevel,
    timeline: Timeline,
    /// Issue cycle per in-flight demand request (populated only at
    /// `ObsLevel::Trace`, for request-lifetime spans).
    req_issue: HashMap<ReqId, u64>,
    /// DRAM service entry cycle per in-flight request (Trace only).
    dram_enter: HashMap<ReqId, u64>,
    /// MSHR occupancy distributions, sampled at every allocation
    /// attempt (populated only at `ObsLevel::Stats` and above).
    occ_l1: Log2Histogram,
    occ_l2: Log2Histogram,
    occ_llc: Log2Histogram,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for `tiles` tiles.
    pub fn new(config: HierarchyConfig, tiles: usize) -> Self {
        let has_l2 = config.l2.is_some();
        let l2cfg = config
            .l2
            .clone()
            .unwrap_or_else(|| CacheConfig::new("L2-off", 64));
        let (dram_simple, dram_banked) = match config.dram {
            DramKind::Simple(c) => (Some(SimpleDram::new(c)), None),
            DramKind::Banked(c) => (None, Some(BankedDram::new(c))),
        };
        MemoryHierarchy {
            l1: (0..tiles).map(|_| Cache::new(config.l1.clone())).collect(),
            l2: if has_l2 {
                (0..tiles).map(|_| Cache::new(l2cfg.clone())).collect()
            } else {
                Vec::new()
            },
            llc: Cache::new(config.llc.clone()),
            l1_mshr: (0..tiles).map(|_| Mshr::new(config.mshr_entries)).collect(),
            l2_mshr: if has_l2 {
                (0..tiles).map(|_| Mshr::new(config.mshr_entries)).collect()
            } else {
                Vec::new()
            },
            llc_mshr: Mshr::new(config.mshr_entries.max(tiles * 4)),
            prefetchers: (0..tiles)
                .map(|_| StreamPrefetcher::new(config.prefetch, config.l1.line_bytes()))
                .collect(),
            dram_simple,
            dram_banked,
            dram_addr: HashMap::new(),
            events: BinaryHeap::new(),
            seq: 0,
            next_id: 0,
            states: HashMap::new(),
            completions: Vec::new(),
            stats: MemStats::default(),
            atomic_free_at: 0,
            obs: ObsLevel::Off,
            timeline: Timeline::new(),
            req_issue: HashMap::new(),
            dram_enter: HashMap::new(),
            occ_l1: Log2Histogram::new(),
            occ_l2: Log2Histogram::new(),
            occ_llc: Log2Histogram::new(),
            config,
        }
    }

    /// Sets the observability level. At [`ObsLevel::Off`] (the
    /// default) no sample or span is ever recorded; at
    /// [`ObsLevel::Stats`] MSHR occupancy histograms are sampled; at
    /// [`ObsLevel::Trace`] request-lifetime and DRAM-service spans are
    /// additionally recorded into the timeline.
    pub fn set_observe(&mut self, level: ObsLevel) {
        self.obs = level;
    }

    /// Takes the recorded timeline (empty below [`ObsLevel::Trace`]).
    pub fn take_timeline(&mut self) -> Timeline {
        let mut t = std::mem::take(&mut self.timeline);
        if !t.is_empty() {
            t.process_name(1, "memory");
            for tile in 0..self.l1.len() {
                t.thread_name(1, tile as u32, format!("mem reqs tile {tile}"));
            }
            t.thread_name(1, self.l1.len() as u32, "dram");
        }
        t
    }

    /// Zeroes every statistic — the aggregate [`MemStats`], each
    /// cache's hit/miss counters, MSHR coalesce/full counters, DRAM
    /// counters, and occupancy histograms — while keeping cache and
    /// queue contents. Sweep rows that reuse a hierarchy call this so
    /// one row's hit/miss counts never leak into the next.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            c.reset_stats();
        }
        self.llc.reset_stats();
        for m in self.l1_mshr.iter_mut().chain(self.l2_mshr.iter_mut()) {
            m.reset_counters();
        }
        self.llc_mshr.reset_counters();
        if let Some(d) = self.dram_simple.as_mut() {
            d.reset_stats();
        }
        if let Some(d) = self.dram_banked.as_mut() {
            d.reset_stats();
        }
        self.occ_l1.reset();
        self.occ_l2.reset();
        self.occ_llc.reset();
        self.timeline = Timeline::new();
    }

    /// Registers every counter of the hierarchy into `reg` under
    /// stable `mem.*` paths: aggregate `mem.<level>.{hits,misses}`,
    /// per-instance `mem.<level>.<tile>.*`, MSHR
    /// `mem.<level>.mshr.{coalesced,full_stalls,occupancy}`, and
    /// `mem.dram.*` (including row-buffer stats for the banked model).
    pub fn register_into(&self, reg: &mut StatsRegistry) {
        let s = &self.stats;
        reg.set_counter("mem.l1.hits", s.l1_hits);
        reg.set_counter("mem.l1.misses", s.l1_misses);
        reg.set_counter("mem.l2.hits", s.l2_hits);
        reg.set_counter("mem.l2.misses", s.l2_misses);
        reg.set_counter("mem.llc.hits", s.llc_hits);
        reg.set_counter("mem.llc.misses", s.llc_misses);
        reg.set_counter("mem.dram.reads", s.dram_reads);
        reg.set_counter("mem.dram.writebacks", s.dram_writebacks);
        reg.set_counter("mem.atomics", s.atomics);
        reg.set_counter("mem.prefetches", s.prefetches);
        for (i, c) in self.l1.iter().enumerate() {
            reg.set_counter(&format!("mem.l1.{i}.hits"), c.hits());
            reg.set_counter(&format!("mem.l1.{i}.misses"), c.misses());
            reg.set_counter(&format!("mem.l1.{i}.accesses"), c.accesses());
        }
        for (i, c) in self.l2.iter().enumerate() {
            reg.set_counter(&format!("mem.l2.{i}.hits"), c.hits());
            reg.set_counter(&format!("mem.l2.{i}.misses"), c.misses());
            reg.set_counter(&format!("mem.l2.{i}.accesses"), c.accesses());
        }
        reg.set_counter("mem.llc.accesses", self.llc.accesses());
        let sum = |ms: &[Mshr], f: fn(&Mshr) -> u64| ms.iter().map(f).sum::<u64>();
        reg.set_counter(
            "mem.l1.mshr.coalesced",
            sum(&self.l1_mshr, Mshr::coalesced_count),
        );
        reg.set_counter(
            "mem.l1.mshr.full_stalls",
            sum(&self.l1_mshr, Mshr::full_stall_count),
        );
        if !self.l2_mshr.is_empty() {
            reg.set_counter(
                "mem.l2.mshr.coalesced",
                sum(&self.l2_mshr, Mshr::coalesced_count),
            );
            reg.set_counter(
                "mem.l2.mshr.full_stalls",
                sum(&self.l2_mshr, Mshr::full_stall_count),
            );
        }
        reg.set_counter("mem.llc.mshr.coalesced", self.llc_mshr.coalesced_count());
        reg.set_counter("mem.llc.mshr.full_stalls", self.llc_mshr.full_stall_count());
        if self.occ_l1.count() > 0 {
            reg.set_histogram("mem.l1.mshr.occupancy", self.occ_l1.clone());
        }
        if self.occ_l2.count() > 0 {
            reg.set_histogram("mem.l2.mshr.occupancy", self.occ_l2.clone());
        }
        if self.occ_llc.count() > 0 {
            reg.set_histogram("mem.llc.mshr.occupancy", self.occ_llc.clone());
        }
        if let Some(d) = self.dram_simple.as_ref() {
            reg.set_counter("mem.dram.requests", d.total_requests());
            reg.set_counter("mem.dram.throttled_cycles", d.throttled_cycles());
        }
        if let Some(d) = self.dram_banked.as_ref() {
            reg.set_counter("mem.dram.requests", d.total_requests());
            reg.set_counter("mem.dram.row_hits", d.row_hits());
            reg.set_counter("mem.dram.row_misses", d.row_misses());
            reg.set_counter("mem.dram.row_conflicts", d.row_conflicts());
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of tiles served.
    pub fn tile_count(&self) -> usize {
        self.l1.len()
    }

    fn has_l2(&self) -> bool {
        !self.l2.is_empty()
    }

    /// One-way NoC latency between `tile` and the shared level.
    fn noc_delay(&self, tile: usize) -> u64 {
        self.config.noc.map(|n| n.latency(tile)).unwrap_or(0)
    }

    fn schedule(&mut self, cycle: u64, ev: Event) {
        self.seq += 1;
        self.events.push(Reverse((cycle, self.seq, ev)));
    }

    /// Issues a request at `now`; the completion arrives via
    /// [`drain_completions`](Self::drain_completions) some cycles later.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnknownTile`] if `req.tile` has no
    /// private-cache slot (the hierarchy was built for fewer tiles).
    pub fn request(&mut self, req: MemReq, now: u64) -> Result<ReqId, MemError> {
        if req.tile >= self.l1.len() {
            return Err(MemError::UnknownTile {
                tile: req.tile,
                tiles: self.l1.len(),
            });
        }
        Ok(self.request_valid(req, now))
    }

    /// [`request`](Self::request) after tile validation — also the
    /// prefetcher's re-entry point (prefetches inherit a known-good tile).
    fn request_valid(&mut self, req: MemReq, now: u64) -> ReqId {
        let id = ReqId(self.next_id);
        self.next_id += 1;
        let line = self.l1[req.tile].line_of(req.addr);
        self.states.insert(
            id,
            ReqState {
                tile: req.tile,
                line,
                kind: req.kind,
                writeback: false,
            },
        );
        if self.obs.trace_on() && req.kind.wants_completion() {
            self.req_issue.insert(id, now);
        }
        match req.kind {
            AccessKind::Atomic => {
                self.stats.atomics += 1;
                // Bypass private caches; atomics serialize at the shared
                // level (one in service at a time system-wide) and pay
                // interconnect + serialization before the lookup — the
                // mechanism behind BFS's imperfect scaling (paper §VI-A).
                let start = now + self.noc_delay(req.tile);
                let start = start.max(self.atomic_free_at);
                self.atomic_free_at = start + self.config.atomic_penalty;
                let at = start + self.config.atomic_penalty + self.config.llc.latency();
                self.schedule(at, Event::Lookup { id, level: Level::Llc });
            }
            _ => {
                if req.kind == AccessKind::Prefetch {
                    self.stats.prefetches += 1;
                } else {
                    // The prefetcher watches the demand stream.
                    let fired = self.prefetchers[req.tile].observe(req.addr);
                    for pf_addr in fired {
                        // Only issue if not already resident in L1.
                        if !self.l1[req.tile].probe(pf_addr) {
                            self.request_valid(
                                MemReq {
                                    tile: req.tile,
                                    addr: pf_addr,
                                    size: 0,
                                    kind: AccessKind::Prefetch,
                                },
                                now,
                            );
                        }
                    }
                }
                let at = now + self.config.l1.latency();
                self.schedule(at, Event::Lookup { id, level: Level::L1 });
            }
        }
        id
    }

    fn complete(&mut self, id: ReqId, now: u64) {
        if let Some(st) = self.states.remove(&id) {
            if st.kind.wants_completion() && !st.writeback {
                if let Some(t0) = self.req_issue.remove(&id) {
                    self.timeline.span(
                        1,
                        st.tile as u32,
                        "mem",
                        format!("{} line 0x{:x}", kind_label(st.kind), st.line),
                        t0,
                        now,
                    );
                }
                self.completions.push(Completion {
                    id,
                    tile: st.tile,
                    at_cycle: now,
                });
            }
        }
    }

    /// Fills `line` into tile-private caches (write-allocate).
    fn fill_private(&mut self, tile: usize, line: u64, dirty: bool, now: u64) {
        if self.has_l2() {
            let out = self.l2[tile].fill(line, dirty);
            if let Some(victim) = out.evicted {
                if out.evicted_dirty {
                    // Write back into the LLC (mark dirty there).
                    if self.llc.probe(victim) {
                        self.llc.access(victim, true);
                    }
                }
                // Inclusion within the private pair.
                self.l1[tile].invalidate(victim);
            }
        }
        let out = self.l1[tile].fill(line, dirty);
        if let Some(victim) = out.evicted {
            if out.evicted_dirty {
                if self.has_l2() && self.l2[tile].probe(victim) {
                    self.l2[tile].access(victim, true);
                } else if self.llc.probe(victim) {
                    self.llc.access(victim, true);
                }
            }
        }
        let _ = now;
    }

    /// Fills `line` into the LLC, back-invalidating private copies of any
    /// evicted victim (inclusive hierarchy) and writing dirty victims to
    /// DRAM.
    fn fill_llc(&mut self, line: u64, dirty: bool, now: u64) {
        let out = self.llc.fill(line, dirty);
        if let Some(victim) = out.evicted {
            let mut victim_dirty = out.evicted_dirty;
            for t in 0..self.l1.len() {
                victim_dirty |= self.l1[t].invalidate(victim);
                if self.has_l2() {
                    victim_dirty |= self.l2[t].invalidate(victim);
                }
            }
            if victim_dirty {
                self.writeback_to_dram(victim, now);
            }
        }
    }

    fn writeback_to_dram(&mut self, line: u64, now: u64) {
        self.stats.dram_writebacks += 1;
        let id = ReqId(self.next_id);
        self.next_id += 1;
        self.states.insert(
            id,
            ReqState {
                tile: 0,
                line,
                kind: AccessKind::Write,
                writeback: true,
            },
        );
        self.schedule(now, Event::DramEnqueue { id });
    }

    fn lookup(&mut self, id: ReqId, level: Level, now: u64) {
        let Some(st) = self.states.get(&id).copied() else {
            return;
        };
        let write = st.kind.is_write();
        if self.obs.stats_on() {
            // Sample MSHR occupancy at every lookup event. Lookup
            // cycles are identical under fast-forward and naive
            // stepping, so these histograms are bit-identical too.
            match level {
                Level::L1 => self.occ_l1.record(self.l1_mshr[st.tile].occupancy() as u64),
                Level::L2 => self.occ_l2.record(self.l2_mshr[st.tile].occupancy() as u64),
                Level::Llc => self.occ_llc.record(self.llc_mshr.occupancy() as u64),
            }
        }
        match level {
            Level::L1 => {
                if self.l1[st.tile].probe(st.line) {
                    self.l1[st.tile].access(st.line, write);
                    self.stats.l1_hits += 1;
                    self.complete(id, now);
                    return;
                }
                if self.l1_mshr[st.tile].is_pending(st.line) {
                    self.l1_mshr[st.tile].track(st.line, id);
                    return;
                }
                match self.l1_mshr[st.tile].track(st.line, id) {
                    MshrOutcome::Allocated => {
                        self.l1[st.tile].access(st.line, write); // count the miss
                        self.stats.l1_misses += 1;
                        let (next, lat) = if self.has_l2() {
                            (Level::L2, self.config.l2.as_ref().expect("l2").latency())
                        } else {
                            (
                                Level::Llc,
                                self.config.llc.latency() + self.noc_delay(st.tile),
                            )
                        };
                        self.schedule(now + lat, Event::Lookup { id, level: next });
                    }
                    MshrOutcome::Coalesced => {}
                    MshrOutcome::Full => {
                        self.schedule(now + 1, Event::Lookup { id, level: Level::L1 });
                    }
                }
            }
            Level::L2 => {
                if self.l2[st.tile].probe(st.line) {
                    self.l2[st.tile].access(st.line, write);
                    self.stats.l2_hits += 1;
                    self.fill_upward_and_complete(st.line, st.tile, write, Level::L2, now);
                    return;
                }
                if self.l2_mshr[st.tile].is_pending(st.line) {
                    self.l2_mshr[st.tile].track(st.line, id);
                    return;
                }
                match self.l2_mshr[st.tile].track(st.line, id) {
                    MshrOutcome::Allocated => {
                        self.l2[st.tile].access(st.line, write);
                        self.stats.l2_misses += 1;
                        let lat = self.config.llc.latency() + self.noc_delay(st.tile);
                        self.schedule(now + lat, Event::Lookup { id, level: Level::Llc });
                    }
                    MshrOutcome::Coalesced => {}
                    MshrOutcome::Full => {
                        self.schedule(now + 1, Event::Lookup { id, level: Level::L2 });
                    }
                }
            }
            Level::Llc => {
                if self.llc.probe(st.line) {
                    self.llc.access(st.line, write);
                    self.stats.llc_hits += 1;
                    let back = now + self.noc_delay(st.tile);
                    if st.kind == AccessKind::Atomic {
                        self.complete(id, back);
                    } else {
                        self.fill_upward_and_complete(st.line, st.tile, write, Level::Llc, back);
                    }
                    return;
                }
                if self.llc_mshr.is_pending(st.line) {
                    self.llc_mshr.track(st.line, id);
                    return;
                }
                match self.llc_mshr.track(st.line, id) {
                    MshrOutcome::Allocated => {
                        self.llc.access(st.line, write);
                        self.stats.llc_misses += 1;
                        self.schedule(now, Event::DramEnqueue { id });
                    }
                    MshrOutcome::Coalesced => {}
                    MshrOutcome::Full => {
                        self.schedule(now + 1, Event::Lookup { id, level: Level::Llc });
                    }
                }
            }
        }
    }

    /// After a hit at `from` (or a DRAM fill), installs the line in the
    /// upper private levels for the requesting tile and completes every
    /// request waiting on the line at or above that level.
    fn fill_upward_and_complete(
        &mut self,
        line: u64,
        tile: usize,
        dirty: bool,
        from: Level,
        now: u64,
    ) {
        let mut to_complete: Vec<ReqId> = Vec::new();
        if from == Level::Llc && self.has_l2() {
            to_complete.extend(self.l2_mshr[tile].complete(line));
        }
        self.fill_private(tile, line, dirty, now);
        to_complete.extend(self.l1_mshr[tile].complete(line));
        to_complete.sort();
        to_complete.dedup();
        for w in to_complete {
            self.complete(w, now);
        }
    }

    fn dram_enqueue(&mut self, id: ReqId, now: u64) {
        let Some(st) = self.states.get(&id).copied() else {
            return;
        };
        if st.writeback {
            // Writebacks consume bandwidth but nobody waits on them.
            if let Some(d) = self.dram_simple.as_mut() {
                d.enqueue(id, now);
            } else if let Some(d) = self.dram_banked.as_mut() {
                if !d.try_enqueue(id, st.line, now) {
                    self.schedule(now + 1, Event::DramEnqueue { id });
                    return;
                }
            }
            self.dram_addr.insert(id, st.line);
            if self.obs.trace_on() {
                self.dram_enter.insert(id, now);
            }
            return;
        }
        self.stats.dram_reads += 1;
        if let Some(d) = self.dram_simple.as_mut() {
            d.enqueue(id, now);
        } else if let Some(d) = self.dram_banked.as_mut() {
            if !d.try_enqueue(id, st.line, now) {
                self.stats.dram_reads -= 1;
                self.schedule(now + 1, Event::DramEnqueue { id });
                return;
            }
        }
        self.dram_addr.insert(id, st.line);
        if self.obs.trace_on() {
            self.dram_enter.insert(id, now);
        }
    }

    fn dram_complete(&mut self, id: ReqId, now: u64) {
        let line = self.dram_addr.remove(&id);
        if let Some(t0) = self.dram_enter.remove(&id) {
            let lane = self.l1.len() as u32;
            let name = match line {
                Some(l) => format!("line 0x{l:x}"),
                None => "dram".to_string(),
            };
            self.timeline.span(1, lane, "dram", name, t0, now);
        }
        let Some(st) = self.states.get(&id).copied() else {
            return;
        };
        if st.writeback {
            self.states.remove(&id);
            return;
        }
        let dirty = st.kind.is_write();
        self.fill_llc(st.line, dirty, now);
        let waiters = self.llc_mshr.complete(st.line);
        let mut seen = std::collections::HashSet::new();
        for w in waiters {
            if !seen.insert(w) {
                continue;
            }
            let Some(wst) = self.states.get(&w).copied() else {
                continue;
            };
            let back = now + self.noc_delay(wst.tile);
            if wst.kind == AccessKind::Atomic {
                self.complete(w, back);
            } else {
                self.fill_upward_and_complete(st.line, wst.tile, wst.kind.is_write(), Level::Llc, back);
                // fill_upward_and_complete completes MSHR waiters; make sure
                // the LLC-level waiter itself is completed too.
                if self.states.contains_key(&w) {
                    self.complete(w, back);
                }
            }
        }
    }

    /// Advances the hierarchy to cycle `now`. Call once per global cycle.
    pub fn step(&mut self, now: u64) {
        // DRAM first so fills scheduled this cycle are visible.
        let done: Vec<ReqId> = if let Some(d) = self.dram_simple.as_mut() {
            d.step(now)
        } else if let Some(d) = self.dram_banked.as_mut() {
            d.step(now)
        } else {
            Vec::new()
        };
        for id in done {
            self.dram_complete(id, now);
        }
        while let Some(Reverse((cycle, _, _))) = self.events.peek() {
            if *cycle > now {
                break;
            }
            let Reverse((_, _, ev)) = self.events.pop().expect("peeked");
            match ev {
                Event::Lookup { id, level } => self.lookup(id, level, now),
                Event::DramEnqueue { id } => self.dram_enqueue(id, now),
            }
        }
    }

    /// Takes all completions produced so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Moves all completions produced so far into `buf` (cleared first).
    /// Allocation-free variant of [`Self::drain_completions`] for callers
    /// that poll every cycle with a reusable buffer.
    pub fn drain_completions_into(&mut self, buf: &mut Vec<Completion>) {
        buf.clear();
        buf.append(&mut self.completions);
    }

    /// Earliest cycle `>= now` at which the hierarchy has internal work:
    /// a scheduled cache/NoC event, a DRAM completion or bank issue
    /// opportunity, or an undelivered completion. `None` when fully idle
    /// (then only new requests can create work). Used by the Interleaver's
    /// fast-forward scheduler; stepping the hierarchy at cycles strictly
    /// before the returned cycle is guaranteed to be a no-op.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut note = |t: u64| {
            let t = t.max(now);
            best = Some(best.map_or(t, |b| b.min(t)));
        };
        if !self.completions.is_empty() {
            note(now);
        }
        if let Some(Reverse((cycle, _, _))) = self.events.peek() {
            note(*cycle);
        }
        if let Some(e) = self.dram_simple.as_ref().and_then(|d| d.next_event_cycle(now)) {
            note(e);
        }
        if let Some(e) = self.dram_banked.as_ref().and_then(|d| d.next_event_cycle(now)) {
            note(e);
        }
        best
    }

    /// Whether no requests are outstanding anywhere.
    pub fn is_idle(&self) -> bool {
        let dram_idle = self
            .dram_simple
            .as_ref()
            .map(|d| d.is_idle())
            .unwrap_or(true)
            && self
                .dram_banked
                .as_ref()
                .map(|d| d.is_idle())
                .unwrap_or(true);
        self.events.is_empty() && dram_idle && self.completions.is_empty() && self.states.is_empty()
    }

    /// Requests accepted but not yet delivered back to their tiles.
    pub fn in_flight(&self) -> usize {
        self.states.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Cycles the SimpleDRAM bandwidth cap throttled ready requests
    /// (0 for the banked model).
    pub fn dram_throttled_cycles(&self) -> u64 {
        self.dram_simple
            .as_ref()
            .map(|d| d.throttled_cycles())
            .unwrap_or(0)
    }

    /// Per-tile L1 miss ratio (for characterization reports).
    pub fn l1_miss_ratio(&self, tile: usize) -> f64 {
        self.l1[tile].miss_ratio()
    }
}


impl MemoryHierarchy {
    /// Serializes every piece of dynamic state — cache arrays, MSHRs,
    /// prefetcher tables, DRAM queues, scheduled events, in-flight
    /// request states, undelivered completions, counters, and
    /// observability artifacts. The configuration and observability
    /// level are not written; a restored hierarchy keeps whatever it was
    /// rebuilt with (mismatched geometry is detected on restore).
    pub fn save_state(&self, e: &mut mosaic_ckpt::Enc) {
        e.u32(self.l1.len() as u32);
        for c in &self.l1 {
            c.encode_into(e);
        }
        e.u32(self.l2.len() as u32);
        for c in &self.l2 {
            c.encode_into(e);
        }
        self.llc.encode_into(e);
        for m in &self.l1_mshr {
            m.encode_into(e);
        }
        for m in &self.l2_mshr {
            m.encode_into(e);
        }
        self.llc_mshr.encode_into(e);
        for p in &self.prefetchers {
            p.encode_into(e);
        }
        match (&self.dram_simple, &self.dram_banked) {
            (Some(d), _) => {
                e.u8(0);
                d.encode_into(e);
            }
            (None, Some(d)) => {
                e.u8(1);
                d.encode_into(e);
            }
            (None, None) => e.u8(2),
        }

        let mut addrs: Vec<(u64, u64)> = self
            .dram_addr
            .iter()
            .map(|(id, &line)| (id.0, line))
            .collect();
        addrs.sort_unstable();
        e.u64(addrs.len() as u64);
        for (id, line) in addrs {
            e.u64(id);
            e.u64(line);
        }

        let mut events: Vec<(u64, u64, Event)> =
            self.events.iter().map(|Reverse(t)| *t).collect();
        events.sort_unstable();
        e.u64(events.len() as u64);
        for (cycle, seq, ev) in events {
            e.u64(cycle);
            e.u64(seq);
            match ev {
                Event::Lookup { id, level } => {
                    e.u8(0);
                    e.u64(id.0);
                    e.u8(match level {
                        Level::L1 => 0,
                        Level::L2 => 1,
                        Level::Llc => 2,
                    });
                }
                Event::DramEnqueue { id } => {
                    e.u8(1);
                    e.u64(id.0);
                }
            }
        }
        e.u64(self.seq);
        e.u64(self.next_id);

        let mut states: Vec<(u64, ReqState)> =
            self.states.iter().map(|(id, &st)| (id.0, st)).collect();
        states.sort_unstable_by_key(|&(id, _)| id);
        e.u64(states.len() as u64);
        for (id, st) in states {
            e.u64(id);
            e.usize(st.tile);
            e.u64(st.line);
            e.u8(match st.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
                AccessKind::Atomic => 2,
                AccessKind::Prefetch => 3,
            });
            e.bool(st.writeback);
        }

        e.u64(self.completions.len() as u64);
        for c in &self.completions {
            e.u64(c.id.0);
            e.usize(c.tile);
            e.u64(c.at_cycle);
        }

        let s = &self.stats;
        for v in [
            s.l1_hits,
            s.l1_misses,
            s.l2_hits,
            s.l2_misses,
            s.llc_hits,
            s.llc_misses,
            s.dram_reads,
            s.dram_writebacks,
            s.atomics,
            s.prefetches,
        ] {
            e.u64(v);
        }
        e.u64(self.atomic_free_at);

        self.timeline.encode_into(e);
        let mut issue: Vec<(u64, u64)> = self
            .req_issue
            .iter()
            .map(|(id, &t)| (id.0, t))
            .collect();
        issue.sort_unstable();
        e.u64(issue.len() as u64);
        for (id, t) in issue {
            e.u64(id);
            e.u64(t);
        }
        let mut enter: Vec<(u64, u64)> = self
            .dram_enter
            .iter()
            .map(|(id, &t)| (id.0, t))
            .collect();
        enter.sort_unstable();
        e.u64(enter.len() as u64);
        for (id, t) in enter {
            e.u64(id);
            e.u64(t);
        }
        self.occ_l1.encode_into(e);
        self.occ_l2.encode_into(e);
        self.occ_llc.encode_into(e);
    }

    /// Restores the state written by [`MemoryHierarchy::save_state`] into
    /// a hierarchy rebuilt from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`mosaic_ckpt::CkptError`] when the data is truncated or
    /// corrupt, or when the rebuilt configuration (tile count, cache
    /// geometry, DRAM model) disagrees with what the checkpoint was taken
    /// from.
    pub fn restore_state(
        &mut self,
        d: &mut mosaic_ckpt::Dec<'_>,
    ) -> Result<(), mosaic_ckpt::CkptError> {
        let nl1 = d.u32("hierarchy L1 count")? as usize;
        if nl1 != self.l1.len() {
            return Err(mosaic_ckpt::CkptError::mismatch(format!(
                "hierarchy: checkpoint has {nl1} L1 caches, configuration has {}",
                self.l1.len()
            )));
        }
        for c in &mut self.l1 {
            c.restore_from(d)?;
        }
        let nl2 = d.u32("hierarchy L2 count")? as usize;
        if nl2 != self.l2.len() {
            return Err(mosaic_ckpt::CkptError::mismatch(format!(
                "hierarchy: checkpoint has {nl2} L2 caches, configuration has {}",
                self.l2.len()
            )));
        }
        for c in &mut self.l2 {
            c.restore_from(d)?;
        }
        self.llc.restore_from(d)?;
        for m in &mut self.l1_mshr {
            m.restore_from(d)?;
        }
        for m in &mut self.l2_mshr {
            m.restore_from(d)?;
        }
        self.llc_mshr.restore_from(d)?;
        for p in &mut self.prefetchers {
            p.restore_from(d)?;
        }
        let dram_tag = d.u8("hierarchy DRAM model tag")?;
        match (dram_tag, self.dram_simple.as_mut(), self.dram_banked.as_mut()) {
            (0, Some(dram), _) => dram.restore_from(d)?,
            (1, _, Some(dram)) => dram.restore_from(d)?,
            (2, None, None) => {}
            _ => {
                return Err(mosaic_ckpt::CkptError::mismatch(format!(
                    "hierarchy: checkpoint DRAM model tag {dram_tag} does not match the configured model"
                )))
            }
        }

        self.dram_addr.clear();
        for _ in 0..d.u64("hierarchy dram-addr count")? {
            let id = ReqId(d.u64("dram-addr id")?);
            let line = d.u64("dram-addr line")?;
            self.dram_addr.insert(id, line);
        }

        self.events.clear();
        for _ in 0..d.u64("hierarchy event count")? {
            let cycle = d.u64("event cycle")?;
            let seq = d.u64("event seq")?;
            let ev = match d.u8("event tag")? {
                0 => {
                    let id = ReqId(d.u64("event req id")?);
                    let level = match d.u8("event level")? {
                        0 => Level::L1,
                        1 => Level::L2,
                        2 => Level::Llc,
                        v => {
                            return Err(mosaic_ckpt::CkptError::corrupt(format!(
                                "event level tag {v}"
                            )))
                        }
                    };
                    Event::Lookup { id, level }
                }
                1 => Event::DramEnqueue {
                    id: ReqId(d.u64("event req id")?),
                },
                v => return Err(mosaic_ckpt::CkptError::corrupt(format!("event tag {v}"))),
            };
            self.events.push(Reverse((cycle, seq, ev)));
        }
        self.seq = d.u64("hierarchy seq")?;
        self.next_id = d.u64("hierarchy next_id")?;

        self.states.clear();
        for _ in 0..d.u64("hierarchy state count")? {
            let id = ReqId(d.u64("state id")?);
            let tile = d.usize("state tile")?;
            let line = d.u64("state line")?;
            let kind = match d.u8("state kind")? {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                2 => AccessKind::Atomic,
                3 => AccessKind::Prefetch,
                v => {
                    return Err(mosaic_ckpt::CkptError::corrupt(format!(
                        "state access kind {v}"
                    )))
                }
            };
            let writeback = d.bool("state writeback")?;
            self.states.insert(
                id,
                ReqState {
                    tile,
                    line,
                    kind,
                    writeback,
                },
            );
        }

        self.completions.clear();
        for _ in 0..d.u64("hierarchy completion count")? {
            let id = ReqId(d.u64("completion id")?);
            let tile = d.usize("completion tile")?;
            let at_cycle = d.u64("completion cycle")?;
            self.completions.push(Completion { id, tile, at_cycle });
        }

        self.stats = MemStats {
            l1_hits: d.u64("stats l1_hits")?,
            l1_misses: d.u64("stats l1_misses")?,
            l2_hits: d.u64("stats l2_hits")?,
            l2_misses: d.u64("stats l2_misses")?,
            llc_hits: d.u64("stats llc_hits")?,
            llc_misses: d.u64("stats llc_misses")?,
            dram_reads: d.u64("stats dram_reads")?,
            dram_writebacks: d.u64("stats dram_writebacks")?,
            atomics: d.u64("stats atomics")?,
            prefetches: d.u64("stats prefetches")?,
        };
        self.atomic_free_at = d.u64("hierarchy atomic_free_at")?;

        self.timeline = Timeline::decode_from(d)?;
        self.req_issue.clear();
        for _ in 0..d.u64("hierarchy req-issue count")? {
            let id = ReqId(d.u64("req-issue id")?);
            let t = d.u64("req-issue cycle")?;
            self.req_issue.insert(id, t);
        }
        self.dram_enter.clear();
        for _ in 0..d.u64("hierarchy dram-enter count")? {
            let id = ReqId(d.u64("dram-enter id")?);
            let t = d.u64("dram-enter cycle")?;
            self.dram_enter.insert(id, t);
        }
        self.occ_l1 = Log2Histogram::decode_from(d)?;
        self.occ_l2 = Log2Histogram::decode_from(d)?;
        self.occ_llc = Log2Histogram::decode_from(d)?;
        Ok(())
    }
}

/// Short stable label for timeline span names.
fn kind_label(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "ld",
        AccessKind::Write => "st",
        AccessKind::Atomic => "atomic",
        AccessKind::Prefetch => "prefetch",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier(tiles: usize) -> MemoryHierarchy {
        let config = HierarchyConfig {
            l1: CacheConfig::new("L1", 1024).with_ways(2).with_latency(1),
            l2: Some(CacheConfig::new("L2", 8 * 1024).with_ways(4).with_latency(4)),
            llc: CacheConfig::new("LLC", 64 * 1024).with_ways(8).with_latency(10),
            mshr_entries: 8,
            prefetch: PrefetchConfig::disabled(),
            dram: DramKind::Simple(SimpleDramConfig {
                min_latency: 50,
                epoch_cycles: 64,
                max_per_epoch: 8,
            }),
            atomic_penalty: 15,
            noc: None,
        };
        MemoryHierarchy::new(config, tiles)
    }

    fn run_one(h: &mut MemoryHierarchy, req: MemReq, start: u64) -> u64 {
        let id = h.request(req, start).expect("valid tile");
        let mut t = start;
        loop {
            h.step(t);
            let done = h.drain_completions();
            if let Some(c) = done.iter().find(|c| c.id == id) {
                return c.at_cycle;
            }
            t += 1;
            assert!(t < start + 100_000, "request never completed");
        }
    }

    #[test]
    fn cold_miss_pays_full_path_then_hits_are_fast() {
        let mut h = hier(1);
        let req = MemReq {
            tile: 0,
            addr: 0x4000,
            size: 4,
            kind: AccessKind::Read,
        };
        let t1 = run_one(&mut h, req, 0);
        // Full path: l1 + l2 + llc lat + dram 50.
        assert!(t1 >= 50, "cold miss too fast: {t1}");
        let t2 = run_one(&mut h, req, t1 + 1) - (t1 + 1);
        assert_eq!(t2, 1, "L1 hit should cost the L1 latency");
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(h.stats().dram_reads, 1);
    }

    #[test]
    fn same_line_requests_coalesce_in_mshr() {
        let mut h = hier(1);
        let mk = |a| MemReq {
            tile: 0,
            addr: a,
            size: 4,
            kind: AccessKind::Read,
        };
        let a = h.request(mk(0x8000), 0).expect("valid tile");
        let b = h.request(mk(0x8004), 0).expect("valid tile");
        let c = h.request(mk(0x8038), 0).expect("valid tile");
        let mut t = 0;
        let mut done = Vec::new();
        while done.len() < 3 {
            h.step(t);
            done.extend(h.drain_completions());
            t += 1;
            assert!(t < 10_000);
        }
        assert_eq!(h.stats().dram_reads, 1, "one line fetch serves all three");
        let ids: Vec<ReqId> = done.iter().map(|c| c.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b) && ids.contains(&c));
    }

    #[test]
    fn two_tiles_have_private_l1s() {
        let mut h = hier(2);
        let t1 = run_one(
            &mut h,
            MemReq {
                tile: 0,
                addr: 0x4000,
                size: 4,
                kind: AccessKind::Read,
            },
            0,
        );
        // Tile 1 misses L1/L2 but hits the shared LLC.
        let t2 = run_one(
            &mut h,
            MemReq {
                tile: 1,
                addr: 0x4000,
                size: 4,
                kind: AccessKind::Read,
            },
            t1 + 1,
        ) - (t1 + 1);
        assert!(t2 < 50, "LLC hit should avoid DRAM: {t2}");
        assert!(t2 > 1, "but it is slower than an L1 hit: {t2}");
        assert_eq!(h.stats().llc_hits, 1);
        assert_eq!(h.stats().dram_reads, 1);
    }

    #[test]
    fn atomics_bypass_private_caches() {
        let mut h = hier(1);
        // Warm the line via a normal read.
        let t1 = run_one(
            &mut h,
            MemReq {
                tile: 0,
                addr: 0x1000,
                size: 4,
                kind: AccessKind::Read,
            },
            0,
        );
        // An atomic to the same line still pays the LLC path.
        let ta = run_one(
            &mut h,
            MemReq {
                tile: 0,
                addr: 0x1000,
                size: 4,
                kind: AccessKind::Atomic,
            },
            t1 + 1,
        ) - (t1 + 1);
        assert!(ta >= 15 + 10, "atomic should pay penalty + LLC: {ta}");
        assert_eq!(h.stats().atomics, 1);
    }

    #[test]
    fn writes_mark_lines_dirty_and_write_back() {
        // Tiny LLC to force evictions.
        let config = HierarchyConfig {
            l1: CacheConfig::new("L1", 256).with_ways(2).with_latency(1),
            l2: None,
            llc: CacheConfig::new("LLC", 512).with_ways(2).with_latency(4),
            mshr_entries: 8,
            prefetch: PrefetchConfig::disabled(),
            dram: DramKind::Simple(SimpleDramConfig {
                min_latency: 20,
                epoch_cycles: 32,
                max_per_epoch: 8,
            }),
            atomic_penalty: 10,
            noc: None,
        };
        let mut h = MemoryHierarchy::new(config, 1);
        let mut t = 0;
        // Write many distinct lines to overflow the LLC.
        for i in 0..32u64 {
            t = run_one(
                &mut h,
                MemReq {
                    tile: 0,
                    addr: 0x10000 + i * 64,
                    size: 4,
                    kind: AccessKind::Write,
                },
                t + 1,
            );
        }
        // Let writebacks drain.
        for _ in 0..2000 {
            t += 1;
            h.step(t);
            h.drain_completions();
        }
        assert!(h.stats().dram_writebacks > 0, "dirty evictions must write back");
        assert!(h.is_idle());
    }

    #[test]
    fn prefetcher_reduces_demand_misses_on_streams() {
        let mk_cfg = |pf: PrefetchConfig| HierarchyConfig {
            l1: CacheConfig::new("L1", 4 * 1024).with_ways(4).with_latency(1),
            l2: None,
            llc: CacheConfig::new("LLC", 256 * 1024).with_ways(8).with_latency(8),
            mshr_entries: 16,
            prefetch: pf,
            dram: DramKind::Simple(SimpleDramConfig {
                min_latency: 60,
                epoch_cycles: 64,
                max_per_epoch: 16,
            }),
            atomic_penalty: 10,
            noc: None,
        };
        let run_stream = |cfg: HierarchyConfig| -> (u64, MemStats) {
            let mut h = MemoryHierarchy::new(cfg, 1);
            let mut t = 0;
            for i in 0..256u64 {
                t = run_one(
                    &mut h,
                    MemReq {
                        tile: 0,
                        addr: 0x100000 + i * 8,
                        size: 8,
                        kind: AccessKind::Read,
                    },
                    t + 1,
                );
            }
            // Drain outstanding prefetches.
            for _ in 0..5000 {
                t += 1;
                h.step(t);
                h.drain_completions();
            }
            (t, h.stats())
        };
        let (t_off, s_off) = run_stream(mk_cfg(PrefetchConfig::disabled()));
        let (t_on, s_on) = run_stream(mk_cfg(PrefetchConfig::default()));
        assert!(s_on.prefetches > 0);
        assert!(
            t_on < t_off,
            "prefetching should speed up a streaming read: {t_on} vs {t_off}"
        );
        assert!(s_on.l1_hits > s_off.l1_hits);
    }

    #[test]
    fn banked_dram_integration() {
        let config = HierarchyConfig {
            l1: CacheConfig::new("L1", 1024).with_ways(2).with_latency(1),
            l2: None,
            llc: CacheConfig::new("LLC", 16 * 1024).with_ways(4).with_latency(6),
            mshr_entries: 8,
            prefetch: PrefetchConfig::disabled(),
            dram: DramKind::Banked(BankedDramConfig::default()),
            atomic_penalty: 10,
            noc: None,
        };
        let mut h = MemoryHierarchy::new(config, 1);
        let t = run_one(
            &mut h,
            MemReq {
                tile: 0,
                addr: 0x9000,
                size: 8,
                kind: AccessKind::Read,
            },
            0,
        );
        assert!(t > 6, "banked DRAM path has nonzero latency");
        assert_eq!(h.stats().dram_reads, 1);
    }

    #[test]
    fn hierarchy_reaches_idle() {
        let mut h = hier(2);
        for i in 0..8 {
            h.request(
                MemReq {
                    tile: i % 2,
                    addr: 0x2000 + i as u64 * 64,
                    size: 4,
                    kind: AccessKind::Read,
                },
                0,
            )
            .expect("valid tile");
        }
        let mut t = 0;
        while !h.is_idle() {
            h.step(t);
            h.drain_completions();
            t += 1;
            assert!(t < 100_000);
        }
    }

    #[test]
    fn reset_stats_zeroes_every_counter_between_rows() {
        let mut h = hier(2);
        for (i, addr) in [0x1000u64, 0x1000, 0x2000, 0x9000].iter().enumerate() {
            let t = run_one(
                &mut h,
                MemReq {
                    tile: i % 2,
                    addr: *addr,
                    size: 8,
                    kind: AccessKind::Read,
                },
                (i as u64) * 500,
            );
            assert!(t > 0);
        }
        assert!(h.stats().l1_misses > 0);
        let mut reg = StatsRegistry::new();
        h.register_into(&mut reg);
        assert!(reg.counter("mem.l1.misses") > 0);
        assert!(reg.counter("mem.dram.requests") > 0);

        h.reset_stats();
        assert_eq!(h.stats(), MemStats::default());
        let mut reg2 = StatsRegistry::new();
        h.register_into(&mut reg2);
        for (path, _) in reg2.iter() {
            assert_eq!(reg2.counter(path), 0, "{path} survived reset");
        }
        // Cache contents survive: the warmed line still hits.
        let t = run_one(
            &mut h,
            MemReq {
                tile: 0,
                addr: 0x1000,
                size: 8,
                kind: AccessKind::Read,
            },
            10_000,
        ) - 10_000;
        assert_eq!(t, 1, "reset must keep cache contents, only zero counters");
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn trace_level_records_request_and_dram_spans() {
        let mut h = hier(1);
        h.set_observe(ObsLevel::Trace);
        let req = MemReq {
            tile: 0,
            addr: 0x4000,
            size: 4,
            kind: AccessKind::Read,
        };
        let done = run_one(&mut h, req, 0);
        let tl = h.take_timeline();
        assert!(
            tl.spans().iter().any(|s| s.cat == "mem" && s.end == done),
            "expected a request-lifetime span ending at completion"
        );
        assert!(
            tl.spans().iter().any(|s| s.cat == "dram"),
            "expected a DRAM service span for the cold miss"
        );
        // Off records nothing.
        let mut h2 = hier(1);
        let _ = run_one(&mut h2, req, 0);
        assert!(h2.take_timeline().is_empty());
        let mut reg = StatsRegistry::new();
        h2.register_into(&mut reg);
        assert!(
            reg.get("mem.l1.mshr.occupancy").is_none(),
            "occupancy histograms only recorded at Stats and above"
        );
    }
}

#[cfg(test)]
mod noc_tests {
    use super::*;

    fn noc_hier(noc: Option<NocConfig>, tiles: usize) -> MemoryHierarchy {
        MemoryHierarchy::new(
            HierarchyConfig {
                l1: CacheConfig::new("L1", 1024).with_ways(2).with_latency(1),
                l2: None,
                llc: CacheConfig::new("LLC", 64 * 1024).with_ways(8).with_latency(10),
                mshr_entries: 8,
                prefetch: PrefetchConfig::disabled(),
                dram: DramKind::Simple(SimpleDramConfig {
                    min_latency: 50,
                    epoch_cycles: 64,
                    max_per_epoch: 8,
                }),
                atomic_penalty: 10,
                noc,
            },
            tiles,
        )
    }

    fn latency_of(h: &mut MemoryHierarchy, tile: usize, addr: u64, start: u64) -> u64 {
        let id = h.request(
            MemReq {
                tile,
                addr,
                size: 4,
                kind: AccessKind::Read,
            },
            start,
        )
        .expect("valid tile");
        let mut t = start;
        loop {
            h.step(t);
            if let Some(c) = h.drain_completions().into_iter().find(|c| c.id == id) {
                return c.at_cycle - start;
            }
            t += 1;
            assert!(t < start + 100_000);
        }
    }

    #[test]
    fn manhattan_hops_from_mesh_center() {
        let noc = NocConfig {
            mesh_width: 4,
            hop_latency: 3,
        };
        // Center is (2, 2); tile 10 sits at (2, 2): minimum 1 hop.
        assert_eq!(noc.hops(10), 1);
        // Tile 0 at (0, 0): 4 hops.
        assert_eq!(noc.hops(0), 4);
        assert_eq!(noc.latency(0), 12);
        assert!(noc.hops(0) > noc.hops(10));
    }

    #[test]
    fn farther_tiles_pay_more_noc_latency() {
        let noc = Some(NocConfig {
            mesh_width: 4,
            hop_latency: 5,
        });
        let mut h = noc_hier(noc, 16);
        // Warm the line into the LLC via tile 10 (center), then compare
        // LLC-hit latencies of a near and a far tile.
        let warm = latency_of(&mut h, 10, 0x9000, 0);
        let near = latency_of(&mut h, 10, 0x9000 + 4, warm + 10);
        // Evict nothing; tile 0's L1 is cold, so it hits the LLC.
        let far = latency_of(&mut h, 0, 0x9000, warm + near + 20);
        assert!(
            far > near,
            "far tile ({far}) should pay more hops than center tile ({near})"
        );
        // The difference reflects the round trip: (4-1) hops x 5 cycles x 2.
        assert!(far - near >= 20, "expected >= 20 extra cycles, got {}", far - near);
    }

    #[test]
    fn no_noc_means_uniform_latency() {
        let mut h = noc_hier(None, 4);
        let a = latency_of(&mut h, 0, 0x5000, 0);
        let mut h2 = noc_hier(None, 4);
        let b = latency_of(&mut h2, 3, 0x5000, 0);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    fn cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new("L1", 1024).with_ways(2).with_latency(1),
            l2: Some(CacheConfig::new("L2", 8 * 1024).with_ways(4).with_latency(4)),
            llc: CacheConfig::new("LLC", 64 * 1024).with_ways(8).with_latency(10),
            mshr_entries: 8,
            prefetch: PrefetchConfig::default(),
            dram: DramKind::Simple(SimpleDramConfig {
                min_latency: 50,
                epoch_cycles: 64,
                max_per_epoch: 4,
            }),
            atomic_penalty: 15,
            noc: None,
        }
    }

    fn drive(h: &mut MemoryHierarchy, from: u64, to: u64, log: &mut Vec<Completion>) {
        for t in from..to {
            if t % 7 == 0 {
                let _ = h.request(
                    MemReq {
                        tile: (t % 2) as usize,
                        addr: 0x4000 + (t % 37) * 64,
                        size: 8,
                        kind: if t % 5 == 0 {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                    },
                    t,
                );
            }
            h.step(t);
            log.extend(h.drain_completions());
        }
    }

    #[test]
    fn mid_flight_snapshot_resumes_bit_identically() {
        // Straight run.
        let mut gold = MemoryHierarchy::new(cfg(), 2);
        let mut gold_log = Vec::new();
        drive(&mut gold, 0, 400, &mut gold_log);

        // Run to a cut point with requests still in flight, snapshot,
        // restore into a fresh hierarchy, finish there.
        let mut first = MemoryHierarchy::new(cfg(), 2);
        let mut log = Vec::new();
        drive(&mut first, 0, 130, &mut log);
        assert!(first.in_flight() > 0, "cut point should be mid-flight");
        let mut e = mosaic_ckpt::Enc::new();
        first.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut resumed = MemoryHierarchy::new(cfg(), 2);
        let mut d = mosaic_ckpt::Dec::new(&bytes);
        resumed.restore_state(&mut d).expect("restore");
        assert!(d.is_exhausted(), "payload fully consumed");
        drive(&mut resumed, 130, 400, &mut log);

        assert_eq!(log, gold_log);
        assert_eq!(resumed.stats(), gold.stats());
        // Re-encoding the final state must match the straight run too.
        let mut ea = mosaic_ckpt::Enc::new();
        gold.save_state(&mut ea);
        let mut eb = mosaic_ckpt::Enc::new();
        resumed.save_state(&mut eb);
        assert_eq!(ea.into_bytes(), eb.into_bytes());
    }

    #[test]
    fn restore_rejects_mismatched_tile_count() {
        let mut h = MemoryHierarchy::new(cfg(), 2);
        let mut log = Vec::new();
        drive(&mut h, 0, 50, &mut log);
        let mut e = mosaic_ckpt::Enc::new();
        h.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut other = MemoryHierarchy::new(cfg(), 4);
        let err = other
            .restore_state(&mut mosaic_ckpt::Dec::new(&bytes))
            .expect_err("tile count differs");
        assert!(matches!(err, mosaic_ckpt::CkptError::Mismatch { .. }));
    }
}
