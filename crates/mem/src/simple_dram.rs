//! SimpleDRAM: minimum latency + epoch-based bandwidth cap (paper §V-B).
//!
//! "SimpleDRAM ensures that all DRAM requests abide by a minimum latency
//! and maximum bandwidth. Every DRAM request is inserted into a priority
//! queue ordered by minimum request completion time (current cycles plus
//! minimum latency). SimpleDRAM enforces the maximum bandwidth limit in
//! epochs. Every cycle, it attempts to return as many requests as possible
//! that have served the minimum latency. Once the number of requests
//! returned in that epoch has exhausted the maximum bandwidth, SimpleDRAM
//! cannot return requests until the next epoch, but it can continue
//! receiving new requests."

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::req::ReqId;

/// Configuration of the SimpleDRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimpleDramConfig {
    /// Minimum access latency in memory-clock cycles.
    pub min_latency: u64,
    /// Epoch length in cycles over which bandwidth is accounted.
    pub epoch_cycles: u64,
    /// Maximum line transfers returned per epoch.
    pub max_per_epoch: u32,
}

impl Default for SimpleDramConfig {
    fn default() -> Self {
        // 200-cycle latency (Table II), 64B lines; defaults sized so that
        // ~24 GB/s at 2 GHz: 24e9 / 64B = 375e6 lines/s = 0.1875 lines per
        // cycle ≈ 24 lines per 128-cycle epoch.
        SimpleDramConfig {
            min_latency: 200,
            epoch_cycles: 128,
            max_per_epoch: 24,
        }
    }
}

impl SimpleDramConfig {
    /// Derives a config from a bandwidth target.
    ///
    /// `bytes_per_cycle` is the sustained bandwidth divided by the clock
    /// (e.g. 68 GB/s at 3.2 GHz ≈ 21.25 B/cycle); `line_bytes` is the
    /// transfer granule.
    pub fn from_bandwidth(min_latency: u64, bytes_per_cycle: f64, line_bytes: u32) -> Self {
        let epoch_cycles = 128u64;
        let lines = (bytes_per_cycle * epoch_cycles as f64 / line_bytes as f64).round() as u32;
        SimpleDramConfig {
            min_latency,
            epoch_cycles,
            max_per_epoch: lines.max(1),
        }
    }
}

/// The SimpleDRAM timing model.
#[derive(Debug, Clone)]
pub struct SimpleDram {
    config: SimpleDramConfig,
    queue: BinaryHeap<Reverse<(u64, u64, ReqId)>>,
    seq: u64,
    epoch_start: u64,
    returned_this_epoch: u32,
    total_requests: u64,
    total_returned: u64,
    throttled_cycles: u64,
    /// Last cycle `step` was called with (for analytic throttle credit).
    last_step: u64,
}

impl SimpleDram {
    /// Creates the model.
    pub fn new(config: SimpleDramConfig) -> Self {
        SimpleDram {
            config,
            queue: BinaryHeap::new(),
            seq: 0,
            epoch_start: 0,
            returned_this_epoch: 0,
            total_requests: 0,
            total_returned: 0,
            throttled_cycles: 0,
            last_step: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimpleDramConfig {
        &self.config
    }

    /// Enqueues a line request at `now`; it can complete no earlier than
    /// `now + min_latency`.
    pub fn enqueue(&mut self, id: ReqId, now: u64) {
        self.seq += 1;
        self.total_requests += 1;
        self.queue
            .push(Reverse((now + self.config.min_latency, self.seq, id)));
    }

    /// Advances to cycle `now`, returning the requests that complete.
    pub fn step(&mut self, now: u64) -> Vec<ReqId> {
        // Credit the cycles in `(last_step, now)` during which the cap
        // provably kept blocking a ready head: the queue cannot change
        // between steps (enqueues happen at stepped cycles), so the head
        // was blocked from the later of its ready time and the previous
        // step until the epoch boundary. When the caller steps every cycle
        // the credited span is empty and only the `+= 1` below counts,
        // exactly as a per-cycle accounting would — which is what keeps
        // `throttled_cycles` identical whether the caller steps densely or
        // fast-forwards between events.
        if self.returned_this_epoch >= self.config.max_per_epoch {
            if let Some(Reverse((ready, _, _))) = self.queue.peek().copied() {
                let boundary = self.epoch_start + self.config.epoch_cycles;
                let start = (self.last_step + 1).max(ready);
                self.throttled_cycles += now.min(boundary).saturating_sub(start);
            }
        }
        self.last_step = now;
        // Roll the epoch window forward.
        if now >= self.epoch_start + self.config.epoch_cycles {
            let epochs = (now - self.epoch_start) / self.config.epoch_cycles;
            self.epoch_start += epochs * self.config.epoch_cycles;
            self.returned_this_epoch = 0;
        }
        let mut out = Vec::new();
        while let Some(Reverse((ready, _, id))) = self.queue.peek().copied() {
            if ready > now {
                break;
            }
            if self.returned_this_epoch >= self.config.max_per_epoch {
                self.throttled_cycles += 1;
                break;
            }
            self.queue.pop();
            self.returned_this_epoch += 1;
            self.total_returned += 1;
            out.push(id);
        }
        out
    }

    /// Earliest cycle `>= now` at which a step could return a request:
    /// the head's ready time, pushed past the epoch boundary while the
    /// bandwidth cap is exhausted. `None` when the queue is empty.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let Reverse((ready, _, _)) = self.queue.peek().copied()?;
        // Epoch state as a step at a cycle `> now` would see it.
        let (epoch_start, returned) = if now >= self.epoch_start + self.config.epoch_cycles {
            (u64::MAX, 0) // a roll happens first; the exact start is moot
        } else {
            (self.epoch_start, self.returned_this_epoch)
        };
        let earliest = if returned >= self.config.max_per_epoch {
            ready.max(epoch_start.saturating_add(self.config.epoch_cycles))
        } else {
            ready
        };
        Some(earliest.max(now))
    }

    /// Whether any requests are outstanding.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests accepted so far.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Cycles in which the bandwidth cap throttled ready requests — the
    /// signature of bandwidth-bound kernels like SPMV (paper §VI-A).
    pub fn throttled_cycles(&self) -> u64 {
        self.throttled_cycles
    }

    /// Zeroes the request/throttle counters, keeping queued requests.
    pub fn reset_stats(&mut self) {
        self.total_requests = 0;
        self.throttled_cycles = 0;
    }
}

impl SimpleDram {
    /// Serializes the pending queue (sorted, which matches pop order since
    /// each entry carries a unique sequence number) and epoch/counter
    /// state.
    pub(crate) fn encode_into(&self, e: &mut mosaic_ckpt::Enc) {
        let mut pending: Vec<(u64, u64, u64)> = self
            .queue
            .iter()
            .map(|Reverse((ready, seq, id))| (*ready, *seq, id.0))
            .collect();
        pending.sort_unstable();
        e.u32(pending.len() as u32);
        for (ready, seq, id) in pending {
            e.u64(ready);
            e.u64(seq);
            e.u64(id);
        }
        e.u64(self.seq);
        e.u64(self.epoch_start);
        e.u32(self.returned_this_epoch);
        e.u64(self.total_requests);
        e.u64(self.total_returned);
        e.u64(self.throttled_cycles);
        e.u64(self.last_step);
    }

    pub(crate) fn restore_from(
        &mut self,
        d: &mut mosaic_ckpt::Dec<'_>,
    ) -> Result<(), mosaic_ckpt::CkptError> {
        self.queue.clear();
        for _ in 0..d.u32("dram queue length")? {
            let ready = d.u64("dram entry ready")?;
            let seq = d.u64("dram entry seq")?;
            let id = ReqId(d.u64("dram entry id")?);
            self.queue.push(Reverse((ready, seq, id)));
        }
        self.seq = d.u64("dram seq")?;
        self.epoch_start = d.u64("dram epoch_start")?;
        self.returned_this_epoch = d.u32("dram returned_this_epoch")?;
        self.total_requests = d.u64("dram total_requests")?;
        self.total_returned = d.u64("dram total_returned")?;
        self.throttled_cycles = d.u64("dram throttled_cycles")?;
        self.last_step = d.u64("dram last_step")?;
        Ok(())
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn dram(lat: u64, epoch: u64, per_epoch: u32) -> SimpleDram {
        SimpleDram::new(SimpleDramConfig {
            min_latency: lat,
            epoch_cycles: epoch,
            max_per_epoch: per_epoch,
        })
    }

    #[test]
    fn respects_min_latency() {
        let mut d = dram(100, 64, 8);
        d.enqueue(ReqId(1), 0);
        assert!(d.step(99).is_empty());
        assert_eq!(d.step(100), vec![ReqId(1)]);
        assert!(d.is_idle());
    }

    #[test]
    fn fifo_among_equal_ready_times() {
        let mut d = dram(10, 64, 8);
        d.enqueue(ReqId(1), 0);
        d.enqueue(ReqId(2), 0);
        d.enqueue(ReqId(3), 0);
        assert_eq!(d.step(10), vec![ReqId(1), ReqId(2), ReqId(3)]);
    }

    #[test]
    fn bandwidth_cap_throttles_within_epoch() {
        let mut d = dram(10, 100, 2);
        for i in 0..6 {
            d.enqueue(ReqId(i), 0);
        }
        // All ready at cycle 10, but only 2 may return in epoch [0, 100).
        let first = d.step(10);
        assert_eq!(first.len(), 2);
        assert!(d.step(50).is_empty());
        // Next epoch allows two more.
        let second = d.step(100);
        assert_eq!(second.len(), 2);
        let third = d.step(200);
        assert_eq!(third.len(), 2);
        assert!(d.is_idle());
        assert!(d.throttled_cycles() > 0);
    }

    #[test]
    fn keeps_accepting_while_throttled() {
        let mut d = dram(10, 100, 1);
        d.enqueue(ReqId(1), 0);
        assert_eq!(d.step(10).len(), 1);
        d.enqueue(ReqId(2), 11);
        // Throttled until cycle 100 even though ready at 21.
        assert!(d.step(50).is_empty());
        assert_eq!(d.step(100), vec![ReqId(2)]);
    }

    #[test]
    fn bandwidth_derivation() {
        let c = SimpleDramConfig::from_bandwidth(200, 21.25, 64);
        // 21.25 B/cycle * 128 cycles / 64 B = 42.5 -> 43 lines per epoch.
        assert_eq!(c.max_per_epoch, 43);
        assert_eq!(c.min_latency, 200);
    }
}
