//! Banked DRAM timing model — the DRAMSim2 substitute (paper §V-B).
//!
//! The paper offers DRAMSim2 as a cycle-accurate alternative to SimpleDRAM
//! ("albeit this model executes slower [and] has a larger memory
//! footprint"). This model reproduces DRAMSim2's *role*: channel/rank/bank
//! structure, open-row policy with row-buffer hit/miss/conflict timing, a
//! bounded per-bank queue, and FR-FCFS-style scheduling (row hits first,
//! then oldest).

use std::collections::VecDeque;

use crate::req::ReqId;

/// Timing and geometry of the banked DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankedDramConfig {
    /// Independent channels (each with its own data bus).
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row size in bytes (determines row-buffer locality).
    pub row_bytes: u64,
    /// Column access latency (row-buffer hit).
    pub t_cas: u64,
    /// Row activation latency.
    pub t_rcd: u64,
    /// Precharge latency (row conflict adds `t_rp + t_rcd`).
    pub t_rp: u64,
    /// Cycles the channel data bus is busy per line transfer.
    pub burst_cycles: u64,
    /// Per-bank request queue depth.
    pub queue_depth: usize,
}

impl Default for BankedDramConfig {
    fn default() -> Self {
        BankedDramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 2048,
            t_cas: 24,
            t_rcd: 24,
            t_rp: 24,
            burst_cycles: 4,
            queue_depth: 32,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BankReq {
    id: ReqId,
    row: u64,
    arrival: u64,
}

#[derive(Debug, Clone)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
    queue: VecDeque<BankReq>,
}

/// The banked DRAM model.
#[derive(Debug, Clone)]
pub struct BankedDram {
    config: BankedDramConfig,
    banks: Vec<Bank>,
    channel_bus_free: Vec<u64>,
    in_flight: Vec<(u64, ReqId)>,
    row_hits: u64,
    row_misses: u64,
    row_conflicts: u64,
    total_requests: u64,
}

impl BankedDram {
    /// Creates the model.
    pub fn new(config: BankedDramConfig) -> Self {
        let nbanks = (config.channels * config.banks_per_channel) as usize;
        BankedDram {
            config,
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0,
                    queue: VecDeque::new(),
                };
                nbanks
            ],
            channel_bus_free: vec![0; config.channels as usize],
            in_flight: Vec::new(),
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
            total_requests: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BankedDramConfig {
        &self.config
    }

    fn map(&self, addr: u64) -> (usize, usize, u64) {
        // Line-interleave across channels, then banks; row = higher bits.
        let line = addr / 64;
        let channel = (line % self.config.channels as u64) as usize;
        let bank_local =
            ((line / self.config.channels as u64) % self.config.banks_per_channel as u64) as usize;
        let row = addr / self.config.row_bytes
            / (self.config.channels * self.config.banks_per_channel) as u64;
        (channel, channel * self.config.banks_per_channel as usize + bank_local, row)
    }

    /// Attempts to enqueue a line request; returns `false` when the target
    /// bank queue is full (caller retries next cycle).
    pub fn try_enqueue(&mut self, id: ReqId, addr: u64, now: u64) -> bool {
        let (_, bank, row) = self.map(addr);
        let b = &mut self.banks[bank];
        if b.queue.len() >= self.config.queue_depth {
            return false;
        }
        b.queue.push_back(BankReq {
            id,
            row,
            arrival: now,
        });
        self.total_requests += 1;
        true
    }

    /// Advances to cycle `now`, returning completed requests.
    pub fn step(&mut self, now: u64) -> Vec<ReqId> {
        // Retire finished transfers.
        let mut done = Vec::new();
        self.in_flight.retain(|&(ready, id)| {
            if ready <= now {
                done.push(id);
                false
            } else {
                true
            }
        });

        // Schedule one request per free bank (FR-FCFS: prefer open-row hits).
        for bank_idx in 0..self.banks.len() {
            let channel = bank_idx / self.config.banks_per_channel as usize;
            let bank = &mut self.banks[bank_idx];
            if bank.busy_until > now || bank.queue.is_empty() {
                continue;
            }
            let pick = bank
                .queue
                .iter()
                .position(|r| Some(r.row) == bank.open_row)
                .unwrap_or(0);
            let req = bank.queue.remove(pick).expect("non-empty queue");
            let access_lat = match bank.open_row {
                Some(r) if r == req.row => {
                    self.row_hits += 1;
                    self.config.t_cas
                }
                Some(_) => {
                    self.row_conflicts += 1;
                    self.config.t_rp + self.config.t_rcd + self.config.t_cas
                }
                None => {
                    self.row_misses += 1;
                    self.config.t_rcd + self.config.t_cas
                }
            };
            bank.open_row = Some(req.row);
            let data_start = (now + access_lat).max(self.channel_bus_free[channel]);
            let ready = data_start + self.config.burst_cycles;
            self.channel_bus_free[channel] = ready;
            bank.busy_until = now + access_lat;
            let _ = req.arrival;
            self.in_flight.push((ready, req.id));
        }
        done
    }

    /// Whether the model has no outstanding work.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.banks.iter().all(|b| b.queue.is_empty())
    }

    /// Earliest cycle `>= now` at which a step could make progress: an
    /// in-flight transfer retires, or a bank with queued requests becomes
    /// free to schedule one (a bank that is already free schedules on the
    /// very next step). `None` when fully idle.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut note = |t: u64| {
            let t = t.max(now);
            best = Some(best.map_or(t, |b| b.min(t)));
        };
        for &(ready, _) in &self.in_flight {
            note(ready);
        }
        for bank in &self.banks {
            if !bank.queue.is_empty() {
                note(bank.busy_until);
            }
        }
        best
    }

    /// Row-buffer hit count.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row misses (bank was idle/precharged).
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Row conflicts (different row was open).
    pub fn row_conflicts(&self) -> u64 {
        self.row_conflicts
    }

    /// Requests accepted.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Zeroes the row-buffer/request counters, keeping queued requests.
    pub fn reset_stats(&mut self) {
        self.row_hits = 0;
        self.row_misses = 0;
        self.row_conflicts = 0;
        self.total_requests = 0;
    }
}

impl BankedDram {
    /// Serializes bank queues in bank order and in-flight transfers in
    /// insertion order (retire order depends on it), plus counters.
    pub(crate) fn encode_into(&self, e: &mut mosaic_ckpt::Enc) {
        e.u32(self.banks.len() as u32);
        for bank in &self.banks {
            match bank.open_row {
                Some(r) => {
                    e.u8(1);
                    e.u64(r);
                }
                None => e.u8(0),
            }
            e.u64(bank.busy_until);
            e.u32(bank.queue.len() as u32);
            for req in &bank.queue {
                e.u64(req.id.0);
                e.u64(req.row);
                e.u64(req.arrival);
            }
        }
        e.u32(self.channel_bus_free.len() as u32);
        for &t in &self.channel_bus_free {
            e.u64(t);
        }
        e.u32(self.in_flight.len() as u32);
        for &(ready, id) in &self.in_flight {
            e.u64(ready);
            e.u64(id.0);
        }
        e.u64(self.row_hits);
        e.u64(self.row_misses);
        e.u64(self.row_conflicts);
        e.u64(self.total_requests);
    }

    pub(crate) fn restore_from(
        &mut self,
        d: &mut mosaic_ckpt::Dec<'_>,
    ) -> Result<(), mosaic_ckpt::CkptError> {
        let nbanks = d.u32("banked dram bank count")? as usize;
        if nbanks != self.banks.len() {
            return Err(mosaic_ckpt::CkptError::mismatch(format!(
                "banked DRAM: checkpoint has {nbanks} banks, configuration has {}",
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            bank.open_row = match d.u8("bank open-row flag")? {
                0 => None,
                1 => Some(d.u64("bank open row")?),
                v => {
                    return Err(mosaic_ckpt::CkptError::corrupt(format!(
                        "bank open-row flag {v}"
                    )))
                }
            };
            bank.busy_until = d.u64("bank busy_until")?;
            bank.queue.clear();
            for _ in 0..d.u32("bank queue length")? {
                let id = ReqId(d.u64("bank req id")?);
                let row = d.u64("bank req row")?;
                let arrival = d.u64("bank req arrival")?;
                bank.queue.push_back(BankReq { id, row, arrival });
            }
        }
        let nchan = d.u32("banked dram channel count")? as usize;
        if nchan != self.channel_bus_free.len() {
            return Err(mosaic_ckpt::CkptError::mismatch(format!(
                "banked DRAM: checkpoint has {nchan} channels, configuration has {}",
                self.channel_bus_free.len()
            )));
        }
        for t in &mut self.channel_bus_free {
            *t = d.u64("channel bus free")?;
        }
        self.in_flight.clear();
        for _ in 0..d.u32("banked dram in-flight count")? {
            let ready = d.u64("in-flight ready")?;
            let id = ReqId(d.u64("in-flight id")?);
            self.in_flight.push((ready, id));
        }
        self.row_hits = d.u64("dram row_hits")?;
        self.row_misses = d.u64("dram row_misses")?;
        self.row_conflicts = d.u64("dram row_conflicts")?;
        self.total_requests = d.u64("dram total_requests")?;
        Ok(())
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(d: &mut BankedDram, start: u64) -> Vec<(u64, ReqId)> {
        let mut out = Vec::new();
        let mut t = start;
        while !d.is_idle() {
            for id in d.step(t) {
                out.push((t, id));
            }
            t += 1;
            assert!(t < start + 1_000_000, "banked dram did not drain");
        }
        out
    }

    #[test]
    fn sequential_addresses_exploit_row_buffer() {
        let mut d = BankedDram::new(BankedDramConfig {
            channels: 1,
            banks_per_channel: 1,
            ..BankedDramConfig::default()
        });
        for i in 0..8u64 {
            assert!(d.try_enqueue(ReqId(i), i * 64, 0));
        }
        run_until_done(&mut d, 0);
        assert_eq!(d.row_misses(), 1); // first access opens the row
        assert_eq!(d.row_hits(), 7);
        assert_eq!(d.row_conflicts(), 0);
    }

    #[test]
    fn alternating_rows_conflict() {
        let cfg = BankedDramConfig {
            channels: 1,
            banks_per_channel: 1,
            row_bytes: 1024,
            ..BankedDramConfig::default()
        };
        let mut d = BankedDram::new(cfg);
        // Two different rows in the same bank, alternating. FR-FCFS will
        // reorder hits first but with strict alternation conflicts remain.
        assert!(d.try_enqueue(ReqId(0), 0, 0));
        let done0 = run_until_done(&mut d, 0);
        assert!(d.try_enqueue(ReqId(1), 4096, done0[0].0));
        let done1 = run_until_done(&mut d, done0[0].0);
        assert!(done1[0].0 > done0[0].0);
        assert_eq!(d.row_conflicts(), 1);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let cfg = BankedDramConfig {
            channels: 1,
            banks_per_channel: 1,
            ..BankedDramConfig::default()
        };
        // Hit timing.
        let mut d1 = BankedDram::new(cfg);
        d1.try_enqueue(ReqId(0), 0, 0);
        let t0 = run_until_done(&mut d1, 0)[0].0;
        d1.try_enqueue(ReqId(1), 64, t0);
        let hit_done = run_until_done(&mut d1, t0)[0].0 - t0;
        // Conflict timing.
        let mut d2 = BankedDram::new(cfg);
        d2.try_enqueue(ReqId(0), 0, 0);
        let t0 = run_until_done(&mut d2, 0)[0].0;
        d2.try_enqueue(ReqId(1), 1 << 20, t0);
        let conflict_done = run_until_done(&mut d2, t0)[0].0 - t0;
        assert!(hit_done < conflict_done);
    }

    #[test]
    fn bank_queue_backpressure() {
        let cfg = BankedDramConfig {
            channels: 1,
            banks_per_channel: 1,
            queue_depth: 2,
            ..BankedDramConfig::default()
        };
        let mut d = BankedDram::new(cfg);
        assert!(d.try_enqueue(ReqId(0), 0, 0));
        assert!(d.try_enqueue(ReqId(1), 64, 0));
        assert!(!d.try_enqueue(ReqId(2), 128, 0));
    }

    #[test]
    fn channels_interleave_lines() {
        let mut d = BankedDram::new(BankedDramConfig::default());
        for i in 0..16u64 {
            assert!(d.try_enqueue(ReqId(i), i * 64, 0));
        }
        let done = run_until_done(&mut d, 0);
        assert_eq!(done.len(), 16);
        assert_eq!(d.total_requests(), 16);
    }
}
