//! Miss Status Holding Registers: request coalescing (paper §V-A).
//!
//! "To coalesce memory requests, caches can utilize an MSHR whose size can
//! be configured. When a cache receives a request, it checks the MSHR to
//! see if there exists a pending request to the same cacheline. If so, it
//! saves the request on the MSHR. When the pending request is served, the
//! MSHR notifies all requests waiting on that cacheline."

use std::collections::HashMap;

use crate::req::ReqId;

/// Result of attempting to track a miss in the MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated: the caller must forward the miss to the
    /// next level.
    Allocated,
    /// The line already had a pending entry: the request was coalesced and
    /// will be woken when the fill arrives.
    Coalesced,
    /// The MSHR is full: the request must retry later.
    Full,
}

/// A fixed-capacity MSHR file keyed by line address.
#[derive(Debug, Clone)]
pub struct Mshr {
    capacity: usize,
    entries: HashMap<u64, Vec<ReqId>>,
    coalesced: u64,
    full_stalls: u64,
}

impl Mshr {
    /// An MSHR file with `capacity` entries (distinct outstanding lines).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        Mshr {
            capacity,
            entries: HashMap::new(),
            coalesced: 0,
            full_stalls: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Outstanding distinct lines.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Tracks a miss for `line` by request `id`.
    pub fn track(&mut self, line: u64, id: ReqId) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&line) {
            waiters.push(id);
            self.coalesced += 1;
            return MshrOutcome::Coalesced;
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.insert(line, vec![id]);
        MshrOutcome::Allocated
    }

    /// Whether `line` has a pending entry.
    pub fn is_pending(&self, line: u64) -> bool {
        self.entries.contains_key(&line)
    }

    /// Completes `line`, returning every waiting request.
    pub fn complete(&mut self, line: u64) -> Vec<ReqId> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Requests that were coalesced onto existing entries.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced
    }

    /// Times a request found the file full.
    pub fn full_stall_count(&self) -> u64 {
        self.full_stalls
    }

    /// Zeroes the coalesce/full-stall counters, keeping live entries.
    pub fn reset_counters(&mut self) {
        self.coalesced = 0;
        self.full_stalls = 0;
    }
}

impl Mshr {
    /// Serializes live entries (in line order) and counters; the capacity
    /// comes from the rebuilt configuration.
    pub(crate) fn encode_into(&self, e: &mut mosaic_ckpt::Enc) {
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        e.u32(lines.len() as u32);
        for line in lines {
            let waiters = &self.entries[&line];
            e.u64(line);
            e.u32(waiters.len() as u32);
            for w in waiters {
                e.u64(w.0);
            }
        }
        e.u64(self.coalesced);
        e.u64(self.full_stalls);
    }

    pub(crate) fn restore_from(
        &mut self,
        d: &mut mosaic_ckpt::Dec<'_>,
    ) -> Result<(), mosaic_ckpt::CkptError> {
        self.entries.clear();
        for _ in 0..d.u32("mshr entry count")? {
            let line = d.u64("mshr line")?;
            let n = d.u32("mshr waiter count")?;
            let mut waiters = Vec::with_capacity(n as usize);
            for _ in 0..n {
                waiters.push(ReqId(d.u64("mshr waiter")?));
            }
            self.entries.insert(line, waiters);
        }
        self.coalesced = d.u64("mshr coalesced")?;
        self.full_stalls = d.u64("mshr full_stalls")?;
        Ok(())
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_coalesce() {
        let mut m = Mshr::new(2);
        assert_eq!(m.track(0x40, ReqId(1)), MshrOutcome::Allocated);
        assert_eq!(m.track(0x40, ReqId(2)), MshrOutcome::Coalesced);
        assert_eq!(m.track(0x80, ReqId(3)), MshrOutcome::Allocated);
        assert_eq!(m.occupancy(), 2);
        assert_eq!(m.coalesced_count(), 1);
    }

    #[test]
    fn full_rejects_new_lines_but_coalesces_existing() {
        let mut m = Mshr::new(1);
        assert_eq!(m.track(0x40, ReqId(1)), MshrOutcome::Allocated);
        assert_eq!(m.track(0x80, ReqId(2)), MshrOutcome::Full);
        assert_eq!(m.track(0x40, ReqId(3)), MshrOutcome::Coalesced);
        assert_eq!(m.full_stall_count(), 1);
    }

    #[test]
    fn complete_wakes_all_waiters() {
        let mut m = Mshr::new(4);
        m.track(0x40, ReqId(1));
        m.track(0x40, ReqId(2));
        m.track(0x40, ReqId(3));
        let w = m.complete(0x40);
        assert_eq!(w, vec![ReqId(1), ReqId(2), ReqId(3)]);
        assert!(!m.is_pending(0x40));
        assert!(m.complete(0x40).is_empty());
    }
}
