//! Set-associative cache timing model (paper §V-A).
//!
//! MosaicSim is a timing simulator: caches hold tags only, no data. The
//! hierarchy is write-back, write-allocate, and fully inclusive; each cache
//! is independently configurable for size, line size, associativity, and
//! access latency.

/// Configuration of one cache instance.
///
/// Build with [`CacheConfig::new`] and refine with the `with_*` methods:
///
/// ```
/// use mosaic_mem::CacheConfig;
/// let l1 = CacheConfig::new("L1", 32 * 1024).with_ways(8).with_latency(1);
/// assert_eq!(l1.sets(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    name: String,
    size_bytes: u64,
    line_bytes: u32,
    ways: u32,
    latency: u64,
}

impl CacheConfig {
    /// A cache of `size_bytes` with 64-byte lines, 8 ways, 1-cycle latency.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(name: &str, size_bytes: u64) -> Self {
        assert!(size_bytes > 0, "cache size must be positive");
        CacheConfig {
            name: name.to_string(),
            size_bytes,
            line_bytes: 64,
            ways: 8,
            latency: 1,
        }
    }

    /// Sets the line size in bytes (must be a power of two).
    pub fn with_line_bytes(mut self, line: u32) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        self.line_bytes = line;
        self
    }

    /// Sets the associativity.
    pub fn with_ways(mut self, ways: u32) -> Self {
        assert!(ways > 0, "associativity must be positive");
        self.ways = ways;
        self
    }

    /// Sets the access latency in cycles.
    pub fn with_latency(mut self, latency: u64) -> Self {
        self.latency = latency;
        self
    }

    /// The cache's name (for stats reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes as u64 / self.ways as u64).max(1)
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

/// Result of installing a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Evicted line address (line-aligned), if a valid line was displaced.
    pub evicted: Option<u64>,
    /// Whether the evicted line was dirty (needs write-back, paper §V-A).
    pub evicted_dirty: bool,
}

/// A tag-only set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
    accesses: u64,
}

impl Cache {
    /// Creates a cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets() as usize;
        let ways = config.ways() as usize;
        Cache {
            config,
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        last_use: 0
                    };
                    ways
                ];
                sets
            ],
            tick: 0,
            hits: 0,
            misses: 0,
            accesses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Line-aligns an address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes as u64 - 1)
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        (set, tag)
    }

    /// Looks up `addr`; on hit updates LRU and (for writes) the dirty bit.
    pub fn access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.tick += 1;
        self.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.last_use = self.tick;
                if write {
                    way.dirty = true;
                }
                self.hits += 1;
                return LookupResult::Hit;
            }
        }
        self.misses += 1;
        LookupResult::Miss
    }

    /// Checks for presence without perturbing LRU or counters.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs the line containing `addr`, evicting the LRU way if
    /// needed. `dirty` marks the installed line (write-allocate stores).
    pub fn fill(&mut self, addr: u64, dirty: bool) -> FillOutcome {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        // Already present (e.g. race between two fills): just update.
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            way.dirty |= dirty;
            way.last_use = self.tick;
            return FillOutcome {
                evicted: None,
                evicted_dirty: false,
            };
        }
        let victim = self
            .sets[set]
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_use } else { 0 })
            .expect("cache has at least one way");
        let outcome = if victim.valid {
            let line_index = victim.tag * self.config.sets() + set as u64;
            FillOutcome {
                evicted: Some(line_index * self.config.line_bytes as u64),
                evicted_dirty: victim.dirty,
            }
        } else {
            FillOutcome {
                evicted: None,
                evicted_dirty: false,
            }
        };
        *victim = Way {
            tag,
            valid: true,
            dirty,
            last_use: self.tick,
        };
        outcome
    }

    /// Invalidates the line containing `addr` (back-invalidation keeps the
    /// hierarchy inclusive). Returns whether the line was present & dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return way.dirty;
            }
        }
        false
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Access count (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Miss ratio in `[0, 1]` (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Zeroes the hit/miss/access counters, keeping cache contents.
    /// Used between sweep rows that reuse a hierarchy so one row's
    /// traffic never leaks into the next row's report.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.accesses = 0;
    }
}

impl Cache {
    /// Serializes tag-array contents and counters. The configuration is
    /// not written — a restored cache keeps the geometry it was rebuilt
    /// with, and [`Cache::restore_from`] verifies it matches.
    pub(crate) fn encode_into(&self, e: &mut mosaic_ckpt::Enc) {
        e.u64(self.tick);
        e.u64(self.hits);
        e.u64(self.misses);
        e.u64(self.accesses);
        e.u32(self.sets.len() as u32);
        e.u32(self.sets.first().map_or(0, |s| s.len()) as u32);
        for set in &self.sets {
            for way in set {
                e.u64(way.tag);
                e.bool(way.valid);
                e.bool(way.dirty);
                e.u64(way.last_use);
            }
        }
    }

    pub(crate) fn restore_from(
        &mut self,
        d: &mut mosaic_ckpt::Dec<'_>,
    ) -> Result<(), mosaic_ckpt::CkptError> {
        self.tick = d.u64("cache tick")?;
        self.hits = d.u64("cache hits")?;
        self.misses = d.u64("cache misses")?;
        self.accesses = d.u64("cache accesses")?;
        let sets = d.u32("cache set count")? as usize;
        let ways = d.u32("cache way count")? as usize;
        if sets != self.sets.len() || ways != self.sets.first().map_or(0, |s| s.len()) {
            return Err(mosaic_ckpt::CkptError::mismatch(format!(
                "cache {}: checkpoint geometry {sets}x{ways} differs from configured {}x{}",
                self.config.name(),
                self.sets.len(),
                self.sets.first().map_or(0, |s| s.len()),
            )));
        }
        for set in &mut self.sets {
            for way in set {
                way.tag = d.u64("cache way tag")?;
                way.valid = d.bool("cache way valid")?;
                way.dirty = d.bool("cache way dirty")?;
                way.last_use = d.u64("cache way last_use")?;
            }
        }
        Ok(())
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig::new("t", 512).with_ways(2))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000, false), LookupResult::Miss);
        c.fill(0x1000, false);
        assert_eq!(c.access(0x1000, false), LookupResult::Hit);
        assert_eq!(c.access(0x1038, false), LookupResult::Hit); // same line
        assert_eq!(c.access(0x1040, false), LookupResult::Miss); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (4 sets, 64B lines: stride 256).
        c.fill(0x0000, false);
        c.fill(0x0100, false);
        // Touch 0x0000 so 0x0100 is LRU.
        c.access(0x0000, false);
        let out = c.fill(0x0200, false);
        assert_eq!(out.evicted, Some(0x0100));
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0100));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(0x0000, true);
        c.fill(0x0100, false);
        c.access(0x0100, false);
        let out = c.fill(0x0200, false);
        assert_eq!(out.evicted, Some(0x0000));
        assert!(out.evicted_dirty);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = tiny();
        c.fill(0x0000, false);
        c.access(0x0000, true);
        assert!(c.invalidate(0x0000)); // returns dirtiness
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x1000, false);
        assert!(c.probe(0x1000));
        c.invalidate(0x1000);
        assert!(!c.probe(0x1000));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = tiny();
        c.access(0x0, false);
        c.fill(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
        assert!((c.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        let cfg = CacheConfig::new("x", 2 * 1024 * 1024)
            .with_ways(8)
            .with_line_bytes(64)
            .with_latency(6);
        assert_eq!(cfg.sets(), 4096);
        assert_eq!(cfg.latency(), 6);
    }
}
