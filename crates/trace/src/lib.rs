//! # mosaic-trace
//!
//! Dynamic trace containers — the output of MosaicSim's Dynamic Trace
//! Generator (paper §II-A). A [`KernelTrace`] holds, per tile:
//!
//! * the **control-flow path**: the sequence of basic-block ids actually
//!   taken (paper Fig. 3, "Taken Control Flow Path");
//! * the **memory trace**: for each static load/store/atomic instruction,
//!   the FIFO of addresses its dynamic instances touched (paper Fig. 3,
//!   "Address Trace per Load/Store Instruction");
//! * the **accelerator trace**: evaluated invocation parameters per
//!   accelerator call site (paper §II-B);
//! * retired-instruction counts.
//!
//! [`TraceRecorder`] implements [`mosaic_ir::TraceSink`], so recording a
//! trace is just running the interpreter with it:
//!
//! ```
//! use mosaic_ir::{Module, FunctionBuilder, Type, Constant, MemImage, RtVal, run_single};
//! use mosaic_trace::TraceRecorder;
//!
//! let mut m = Module::new("demo");
//! let f = m.add_function("touch", vec![("p".into(), Type::Ptr)], Type::Void);
//! let mut b = FunctionBuilder::new(m.function_mut(f));
//! let e = b.create_block("entry");
//! b.switch_to(e);
//! let p = b.param(0);
//! let v = b.load(Type::I32, p);
//! b.store(p, v);
//! b.ret(None);
//!
//! let mut mem = MemImage::new();
//! let buf = mem.alloc_i32(1);
//! let mut rec = TraceRecorder::new(1);
//! run_single(&m, mem, f, vec![RtVal::Int(buf as i64)], &mut rec)?;
//! let trace = rec.finish();
//! assert_eq!(trace.tile(0).path().len(), 1);
//! assert_eq!(trace.tile(0).mem_access_count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The paper notes (§VI-B) that memory traces dominate trace storage;
//! [`TraceSizeReport`] reproduces that accounting.

#![warn(missing_docs)]

mod file;

use std::collections::HashMap;

use mosaic_ir::{AccelOp, BlockId, FuncId, InstId, TraceSink};

/// One dynamic memory access: the resolved address and access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub size: u8,
    /// Whether the access writes memory.
    pub write: bool,
}

/// One dynamic accelerator invocation with its evaluated parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelInvocation {
    /// The static call site.
    pub inst: InstId,
    /// Which accelerated function.
    pub accel: AccelOp,
    /// Evaluated arguments (pointers and sizes).
    pub args: Vec<i64>,
}

/// The dynamic trace of one tile's kernel execution.
#[derive(Debug, Clone, Default)]
pub struct TileTrace {
    func: Option<FuncId>,
    path: Vec<BlockId>,
    mem: HashMap<InstId, Vec<MemAccess>>,
    accel: HashMap<InstId, Vec<AccelInvocation>>,
    accel_order: Vec<AccelInvocation>,
    retired: u64,
}

impl TileTrace {
    /// The kernel function this tile executed (if anything ran).
    pub fn func(&self) -> Option<FuncId> {
        self.func
    }

    /// The taken control-flow path: basic-block ids in execution order.
    pub fn path(&self) -> &[BlockId] {
        &self.path
    }

    /// The address stream of one static memory instruction, in dynamic
    /// execution order.
    pub fn mem_stream(&self, inst: InstId) -> &[MemAccess] {
        self.mem.get(&inst).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All static memory instructions that executed at least once.
    pub fn mem_insts(&self) -> impl Iterator<Item = InstId> + '_ {
        self.mem.keys().copied()
    }

    /// Total dynamic memory accesses.
    pub fn mem_access_count(&self) -> u64 {
        self.mem.values().map(|v| v.len() as u64).sum()
    }

    /// The invocation stream of one static accelerator call site.
    pub fn accel_stream(&self, inst: InstId) -> &[AccelInvocation] {
        self.accel.get(&inst).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All accelerator invocations in dynamic order.
    pub fn accel_invocations(&self) -> &[AccelInvocation] {
        &self.accel_order
    }

    /// Retired dynamic instruction count.
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

/// A complete kernel trace: one [`TileTrace`] per tile.
#[derive(Debug, Clone, Default)]
pub struct KernelTrace {
    tiles: Vec<TileTrace>,
}

impl KernelTrace {
    /// Number of tiles in the trace.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// The trace of one tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn tile(&self, tile: usize) -> &TileTrace {
        &self.tiles[tile]
    }

    /// Iterates over all tile traces.
    pub fn tiles(&self) -> impl Iterator<Item = &TileTrace> {
        self.tiles.iter()
    }

    /// Total retired instructions across tiles.
    pub fn total_retired(&self) -> u64 {
        self.tiles.iter().map(|t| t.retired).sum()
    }

    /// Storage accounting, mirroring the paper's §VI-B discussion.
    pub fn size_report(&self) -> TraceSizeReport {
        let mut r = TraceSizeReport::default();
        for t in &self.tiles {
            r.control_flow_bytes += 4 * t.path.len() as u64;
            r.memory_bytes += t
                .mem
                .values()
                .map(|v| 9 * v.len() as u64) // 8-byte address + 1-byte size/kind
                .sum::<u64>();
            r.accel_bytes += t
                .accel_order
                .iter()
                .map(|a| 8 * a.args.len() as u64 + 4)
                .sum::<u64>();
        }
        r
    }
}

/// Byte sizes of the three trace components (paper §VI-B: control-flow and
/// DDG traces are typically small; memory traces dominate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSizeReport {
    /// Bytes for the control-flow path.
    pub control_flow_bytes: u64,
    /// Bytes for the per-instruction address streams.
    pub memory_bytes: u64,
    /// Bytes for accelerator invocation parameters.
    pub accel_bytes: u64,
}

impl TraceSizeReport {
    /// Total trace footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.control_flow_bytes + self.memory_bytes + self.accel_bytes
    }
}

/// Records a [`KernelTrace`] during functional execution.
///
/// Implements [`mosaic_ir::TraceSink`]; pass it to the interpreter and call
/// [`finish`](Self::finish) afterwards.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    trace: KernelTrace,
}

impl TraceRecorder {
    /// A recorder for `tiles` tiles.
    pub fn new(tiles: usize) -> Self {
        TraceRecorder {
            trace: KernelTrace {
                tiles: vec![TileTrace::default(); tiles],
            },
        }
    }

    /// Consumes the recorder, yielding the trace.
    pub fn finish(self) -> KernelTrace {
        self.trace
    }

    fn tile_mut(&mut self, tile: usize) -> &mut TileTrace {
        if tile >= self.trace.tiles.len() {
            self.trace.tiles.resize(tile + 1, TileTrace::default());
        }
        &mut self.trace.tiles[tile]
    }
}

impl TraceSink for TraceRecorder {
    fn on_block(&mut self, tile: usize, func: FuncId, block: BlockId) {
        let t = self.tile_mut(tile);
        t.func.get_or_insert(func);
        t.path.push(block);
    }

    fn on_mem(&mut self, tile: usize, inst: InstId, addr: u64, size: u8, write: bool) {
        self.tile_mut(tile)
            .mem
            .entry(inst)
            .or_default()
            .push(MemAccess { addr, size, write });
    }

    fn on_accel(&mut self, tile: usize, inst: InstId, accel: AccelOp, args: &[i64]) {
        let inv = AccelInvocation {
            inst,
            accel,
            args: args.to_vec(),
        };
        let t = self.tile_mut(tile);
        t.accel.entry(inst).or_default().push(inv.clone());
        t.accel_order.push(inv);
    }

    fn on_retire(&mut self, tile: usize) {
        self.tile_mut(tile).retired += 1;
    }
}

/// Cursor over one tile's trace during timing replay: hands out block ids
/// and per-instruction addresses in the order the timing model consumes
/// them (paper §II-A: DBBs are launched serially in trace order).
#[derive(Debug)]
pub struct TileTraceCursor<'t> {
    trace: &'t TileTrace,
    path_pos: usize,
    mem_pos: HashMap<InstId, usize>,
    accel_pos: HashMap<InstId, usize>,
}

impl<'t> TileTraceCursor<'t> {
    /// A cursor at the start of `trace`.
    pub fn new(trace: &'t TileTrace) -> Self {
        TileTraceCursor {
            trace,
            path_pos: 0,
            mem_pos: HashMap::new(),
            accel_pos: HashMap::new(),
        }
    }

    /// The next basic block on the control-flow path without consuming it.
    pub fn peek_block(&self) -> Option<BlockId> {
        self.trace.path.get(self.path_pos).copied()
    }

    /// Looks `k` blocks ahead on the path (0 = same as
    /// [`peek_block`](Self::peek_block)).
    pub fn peek_block_at(&self, k: usize) -> Option<BlockId> {
        self.trace.path.get(self.path_pos + k).copied()
    }

    /// Consumes and returns the next block on the path.
    pub fn next_block(&mut self) -> Option<BlockId> {
        let b = self.peek_block();
        if b.is_some() {
            self.path_pos += 1;
        }
        b
    }

    /// Number of blocks consumed so far.
    pub fn blocks_consumed(&self) -> usize {
        self.path_pos
    }

    /// Whether the whole path has been consumed.
    pub fn is_done(&self) -> bool {
        self.path_pos >= self.trace.path.len()
    }

    /// Consumes the next dynamic access of static memory instruction
    /// `inst`.
    ///
    /// Returns `None` if the instruction has no further recorded accesses
    /// (which indicates a replay/trace mismatch).
    pub fn next_mem(&mut self, inst: InstId) -> Option<MemAccess> {
        let pos = self.mem_pos.entry(inst).or_insert(0);
        let a = self.trace.mem_stream(inst).get(*pos).copied();
        if a.is_some() {
            *pos += 1;
        }
        a
    }

    /// Consumes the next dynamic invocation of accelerator call site
    /// `inst`.
    pub fn next_accel(&mut self, inst: InstId) -> Option<&'t AccelInvocation> {
        let pos = self.accel_pos.entry(inst).or_insert(0);
        let a = self.trace.accel_stream(inst).get(*pos);
        if a.is_some() {
            *pos += 1;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_ir::{run_single, BinOp, Constant, FunctionBuilder, MemImage, Module, RtVal, Type};

    fn traced_loop(n: i64) -> (KernelTrace, InstId) {
        let mut m = Module::new("t");
        let f = m.add_function(
            "k",
            vec![("p".into(), Type::Ptr), ("n".into(), Type::I64)],
            Type::Void,
        );
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (p, nn) = (b.param(0), b.param(1));
        let e = b.create_block("entry");
        b.switch_to(e);
        let mut load_id = None;
        b.emit_counted_loop("l", Constant::i64(0).into(), nn, |b, i| {
            let a = b.gep(p, i, 4);
            let v = b.load(Type::I32, a);
            load_id = v.as_inst();
            let v2 = b.bin(BinOp::Add, v, Constant::i32(1).into());
            b.store(a, v2);
        });
        b.ret(None);
        let mut mem = MemImage::new();
        let p = mem.alloc_i32(n as u64);
        let mut rec = TraceRecorder::new(1);
        run_single(
            &m,
            mem,
            f,
            vec![RtVal::Int(p as i64), RtVal::Int(n)],
            &mut rec,
        )
        .unwrap();
        (rec.finish(), load_id.unwrap())
    }

    #[test]
    fn path_records_loop_iterations() {
        let (trace, _) = traced_loop(4);
        // entry, (header, body) x 4, final header, cont
        let t = trace.tile(0);
        assert_eq!(t.path().len(), 1 + 2 * 4 + 1 + 1);
        assert_eq!(t.path()[0], BlockId(0));
    }

    #[test]
    fn mem_stream_is_sequential() {
        let (trace, load_id) = traced_loop(4);
        let stream = trace.tile(0).mem_stream(load_id);
        assert_eq!(stream.len(), 4);
        for w in stream.windows(2) {
            assert_eq!(w[1].addr - w[0].addr, 4);
        }
        assert!(stream.iter().all(|a| !a.write && a.size == 4));
    }

    #[test]
    fn cursor_consumes_in_order() {
        let (trace, load_id) = traced_loop(3);
        let mut cur = TileTraceCursor::new(trace.tile(0));
        assert_eq!(cur.peek_block(), Some(BlockId(0)));
        let mut blocks = 0;
        while cur.next_block().is_some() {
            blocks += 1;
        }
        assert_eq!(blocks, trace.tile(0).path().len());
        assert!(cur.is_done());
        let a0 = cur.next_mem(load_id).unwrap();
        let a1 = cur.next_mem(load_id).unwrap();
        let a2 = cur.next_mem(load_id).unwrap();
        assert!(cur.next_mem(load_id).is_none());
        assert!(a0.addr < a1.addr && a1.addr < a2.addr);
    }

    #[test]
    fn size_report_counts_components() {
        let (trace, _) = traced_loop(8);
        let r = trace.size_report();
        assert_eq!(r.control_flow_bytes, 4 * trace.tile(0).path().len() as u64);
        assert_eq!(r.memory_bytes, 9 * trace.tile(0).mem_access_count());
        assert_eq!(r.total_bytes(), r.control_flow_bytes + r.memory_bytes);
    }

    #[test]
    fn retired_counts_match_interp() {
        let (trace, _) = traced_loop(2);
        assert!(trace.total_retired() > 0);
        assert_eq!(trace.tile_count(), 1);
    }
}
