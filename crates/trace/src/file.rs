//! On-disk trace format.
//!
//! The paper's toolchain materializes traces as files between the native
//! instrumented run and simulation (§II-A, §VI-B). This module gives
//! [`KernelTrace`] a compact little-endian binary format
//! (`write_to`/`read_from` plus `save`/`load` path helpers) so traces can
//! be generated once and replayed across many system configurations —
//! the workflow behind every multi-config figure harness.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mosaic_ir::{AccelOp, BlockId, FuncId, InstId};

use crate::{AccelInvocation, KernelTrace, MemAccess, TileTrace};

const MAGIC: &[u8; 4] = b"MSTR";
const VERSION: u32 = 1;

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn w_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn r_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = r_u32(r)? as usize;
    if len > 4096 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace string implausibly long",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad utf-8"))
}

impl KernelTrace {
    /// Writes the trace in the binary format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w_u32(w, VERSION)?;
        w_u32(w, self.tile_count() as u32)?;
        for tile in self.tiles() {
            match tile.func() {
                Some(f) => {
                    w.write_all(&[1])?;
                    w_u32(w, f.0)?;
                }
                None => w.write_all(&[0, 0, 0, 0, 0])?,
            }
            w_u64(w, tile.path().len() as u64)?;
            for b in tile.path() {
                w_u32(w, b.0)?;
            }
            let mem_insts: Vec<InstId> = {
                let mut v: Vec<InstId> = tile.mem_insts().collect();
                v.sort();
                v
            };
            w_u32(w, mem_insts.len() as u32)?;
            for inst in mem_insts {
                w_u32(w, inst.0)?;
                let stream = tile.mem_stream(inst);
                w_u64(w, stream.len() as u64)?;
                for a in stream {
                    w_u64(w, a.addr)?;
                    w.write_all(&[a.size, a.write as u8])?;
                }
            }
            w_u32(w, tile.accel_invocations().len() as u32)?;
            for inv in tile.accel_invocations() {
                w_u32(w, inv.inst.0)?;
                w_str(w, inv.accel.name())?;
                w_u32(w, inv.args.len() as u32)?;
                for &a in &inv.args {
                    w_u64(w, a as u64)?;
                }
            }
            w_u64(w, tile.retired())?;
        }
        Ok(())
    }

    /// Reads a trace in the binary format.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic/version or malformed content,
    /// plus any I/O error from the reader.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<KernelTrace> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a trace file"));
        }
        let version = r_u32(r)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let tiles = r_u32(r)? as usize;
        if tiles > 1 << 16 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "too many tiles"));
        }
        let mut out = Vec::with_capacity(tiles);
        for _ in 0..tiles {
            let mut tile = TileTrace::default();
            let has_func = r_u8(r)? == 1;
            let func = r_u32(r)?;
            if has_func {
                tile.func = Some(FuncId(func));
            }
            let path_len = r_u64(r)? as usize;
            tile.path.reserve(path_len);
            for _ in 0..path_len {
                tile.path.push(BlockId(r_u32(r)?));
            }
            let mem_insts = r_u32(r)? as usize;
            for _ in 0..mem_insts {
                let inst = InstId(r_u32(r)?);
                let len = r_u64(r)? as usize;
                let mut stream = Vec::with_capacity(len);
                for _ in 0..len {
                    let addr = r_u64(r)?;
                    let size = r_u8(r)?;
                    let write = r_u8(r)? != 0;
                    stream.push(MemAccess { addr, size, write });
                }
                tile.mem.insert(inst, stream);
            }
            let accels = r_u32(r)? as usize;
            for _ in 0..accels {
                let inst = InstId(r_u32(r)?);
                let name = r_str(r)?;
                let accel = AccelOp::from_name(&name).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown accelerator `{name}`"),
                    )
                })?;
                let nargs = r_u32(r)? as usize;
                let mut args = Vec::with_capacity(nargs);
                for _ in 0..nargs {
                    args.push(r_u64(r)? as i64);
                }
                let inv = AccelInvocation { inst, accel, args };
                tile.accel.entry(inst).or_default().push(inv.clone());
                tile.accel_order.push(inv);
            }
            tile.retired = r_u64(r)?;
            out.push(tile);
        }
        Ok(KernelTrace { tiles: out })
    }

    /// Saves the trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Loads a trace from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and format violations.
    pub fn load(path: impl AsRef<Path>) -> io::Result<KernelTrace> {
        let mut r = BufReader::new(File::open(path)?);
        KernelTrace::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecorder;
    use mosaic_ir::{run_single, BinOp, Constant, FunctionBuilder, MemImage, Module, RtVal, Type};

    fn sample_trace() -> KernelTrace {
        let mut m = Module::new("t");
        let f = m.add_function(
            "k",
            vec![("p".into(), Type::Ptr), ("n".into(), Type::I64)],
            Type::Void,
        );
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (p, n) = (b.param(0), b.param(1));
        let e = b.create_block("entry");
        b.switch_to(e);
        b.emit_counted_loop("l", Constant::i64(0).into(), n, |b, i| {
            let a = b.gep(p, i, 4);
            let v = b.load(Type::I32, a);
            let v2 = b.bin(BinOp::Add, v, Constant::i32(3).into());
            b.store(a, v2);
        });
        b.accel_call(
            mosaic_ir::AccelOp::Relu,
            vec![Constant::i64(128).into()],
        );
        b.ret(None);
        let mut mem = MemImage::new();
        let buf = mem.alloc_i32(32);
        let mut rec = TraceRecorder::new(1);
        run_single(
            &m,
            mem,
            f,
            vec![RtVal::Int(buf as i64), RtVal::Int(32)],
            &mut rec,
        )
        .unwrap();
        rec.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let loaded = KernelTrace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.tile_count(), trace.tile_count());
        let (a, b) = (trace.tile(0), loaded.tile(0));
        assert_eq!(a.path(), b.path());
        assert_eq!(a.retired(), b.retired());
        assert_eq!(a.func(), b.func());
        let mut insts: Vec<_> = a.mem_insts().collect();
        insts.sort();
        for i in insts {
            assert_eq!(a.mem_stream(i), b.mem_stream(i));
        }
        assert_eq!(a.accel_invocations(), b.accel_invocations());
        assert_eq!(trace.size_report(), loaded.size_report());
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let trace = sample_trace();
        let path = std::env::temp_dir().join("mosaic_trace_test.mstr");
        trace.save(&path).unwrap();
        let loaded = KernelTrace::load(&path).unwrap();
        assert_eq!(loaded.tile(0).path(), trace.tile(0).path());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let garbage = b"definitely not a trace";
        assert!(KernelTrace::read_from(&mut garbage.as_ref()).is_err());
        // Right magic, wrong version.
        let mut bad = Vec::new();
        bad.extend_from_slice(b"MSTR");
        bad.extend_from_slice(&99u32.to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        assert!(KernelTrace::read_from(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_is_an_error_not_a_panic() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        for cut in [5usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(
                KernelTrace::read_from(&mut &buf[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
    }
}
