//! On-disk trace format.
//!
//! The paper's toolchain materializes traces as files between the native
//! instrumented run and simulation (§II-A, §VI-B). This module gives
//! [`KernelTrace`] a compact little-endian binary format
//! (`write_to`/`read_from` plus `save`/`load` path helpers) so traces can
//! be generated once and replayed across many system configurations —
//! the workflow behind every multi-config figure harness.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mosaic_ir::{AccelOp, BlockId, FuncId, InstId};

use crate::{AccelInvocation, KernelTrace, MemAccess, TileTrace};

const MAGIC: &[u8; 4] = b"MSTR";
const VERSION: u32 = 1;

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn w_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn r_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = r_u32(r)? as usize;
    if len > 4096 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace string implausibly long",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad utf-8"))
}

impl KernelTrace {
    /// Writes the trace in the binary format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w_u32(w, VERSION)?;
        w_u32(w, self.tile_count() as u32)?;
        for tile in self.tiles() {
            match tile.func() {
                Some(f) => {
                    w.write_all(&[1])?;
                    w_u32(w, f.0)?;
                }
                None => w.write_all(&[0, 0, 0, 0, 0])?,
            }
            w_u64(w, tile.path().len() as u64)?;
            for b in tile.path() {
                w_u32(w, b.0)?;
            }
            let mem_insts: Vec<InstId> = {
                let mut v: Vec<InstId> = tile.mem_insts().collect();
                v.sort();
                v
            };
            w_u32(w, mem_insts.len() as u32)?;
            for inst in mem_insts {
                w_u32(w, inst.0)?;
                let stream = tile.mem_stream(inst);
                w_u64(w, stream.len() as u64)?;
                for a in stream {
                    w_u64(w, a.addr)?;
                    w.write_all(&[a.size, a.write as u8])?;
                }
            }
            w_u32(w, tile.accel_invocations().len() as u32)?;
            for inv in tile.accel_invocations() {
                w_u32(w, inv.inst.0)?;
                w_str(w, inv.accel.name())?;
                w_u32(w, inv.args.len() as u32)?;
                for &a in &inv.args {
                    w_u64(w, a as u64)?;
                }
            }
            w_u64(w, tile.retired())?;
        }
        Ok(())
    }

    /// Reads a trace in the binary format.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic/version or malformed content,
    /// plus any I/O error from the reader.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<KernelTrace> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "not a MosaicSim trace file: expected magic {:?}, found {:?}",
                    String::from_utf8_lossy(MAGIC),
                    String::from_utf8_lossy(&magic),
                ),
            ));
        }
        let version = r_u32(r)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "unsupported trace version {version}: this build reads version {VERSION} \
                     (was the file written by a newer MosaicSim?)"
                ),
            ));
        }
        let tiles = r_u32(r)? as usize;
        if tiles > 1 << 16 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "too many tiles"));
        }
        let mut out = Vec::with_capacity(tiles);
        for _ in 0..tiles {
            let mut tile = TileTrace::default();
            let has_func = r_u8(r)? == 1;
            let func = r_u32(r)?;
            if has_func {
                tile.func = Some(FuncId(func));
            }
            let path_len = r_u64(r)? as usize;
            tile.path.reserve(path_len);
            for _ in 0..path_len {
                tile.path.push(BlockId(r_u32(r)?));
            }
            let mem_insts = r_u32(r)? as usize;
            for _ in 0..mem_insts {
                let inst = InstId(r_u32(r)?);
                let len = r_u64(r)? as usize;
                let mut stream = Vec::with_capacity(len);
                for _ in 0..len {
                    let addr = r_u64(r)?;
                    let size = r_u8(r)?;
                    let write = r_u8(r)? != 0;
                    stream.push(MemAccess { addr, size, write });
                }
                tile.mem.insert(inst, stream);
            }
            let accels = r_u32(r)? as usize;
            for _ in 0..accels {
                let inst = InstId(r_u32(r)?);
                let name = r_str(r)?;
                let accel = AccelOp::from_name(&name).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown accelerator `{name}`"),
                    )
                })?;
                let nargs = r_u32(r)? as usize;
                let mut args = Vec::with_capacity(nargs);
                for _ in 0..nargs {
                    args.push(r_u64(r)? as i64);
                }
                let inv = AccelInvocation { inst, accel, args };
                tile.accel.entry(inst).or_default().push(inv.clone());
                tile.accel_order.push(inv);
            }
            tile.retired = r_u64(r)?;
            out.push(tile);
        }
        Ok(KernelTrace { tiles: out })
    }

    /// Saves the trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Loads a trace from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and format violations; every error
    /// names the offending path, and a short read is reported as a
    /// truncated file rather than a bare `UnexpectedEof`.
    pub fn load(path: impl AsRef<Path>) -> io::Result<KernelTrace> {
        let path = path.as_ref();
        let with_path = |e: io::Error| {
            let detail = if e.kind() == io::ErrorKind::UnexpectedEof {
                "truncated trace file (unexpected end of file)".to_string()
            } else {
                e.to_string()
            };
            io::Error::new(e.kind(), format!("{}: {detail}", path.display()))
        };
        let mut r = BufReader::new(File::open(path).map_err(&with_path)?);
        KernelTrace::read_from(&mut r).map_err(&with_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecorder;
    use mosaic_ir::{run_single, BinOp, Constant, FunctionBuilder, MemImage, Module, RtVal, Type};

    fn sample_trace() -> KernelTrace {
        let mut m = Module::new("t");
        let f = m.add_function(
            "k",
            vec![("p".into(), Type::Ptr), ("n".into(), Type::I64)],
            Type::Void,
        );
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (p, n) = (b.param(0), b.param(1));
        let e = b.create_block("entry");
        b.switch_to(e);
        b.emit_counted_loop("l", Constant::i64(0).into(), n, |b, i| {
            let a = b.gep(p, i, 4);
            let v = b.load(Type::I32, a);
            let v2 = b.bin(BinOp::Add, v, Constant::i32(3).into());
            b.store(a, v2);
        });
        b.accel_call(
            mosaic_ir::AccelOp::Relu,
            vec![Constant::i64(128).into()],
        );
        b.ret(None);
        let mut mem = MemImage::new();
        let buf = mem.alloc_i32(32);
        let mut rec = TraceRecorder::new(1);
        run_single(
            &m,
            mem,
            f,
            vec![RtVal::Int(buf as i64), RtVal::Int(32)],
            &mut rec,
        )
        .unwrap();
        rec.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let loaded = KernelTrace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.tile_count(), trace.tile_count());
        let (a, b) = (trace.tile(0), loaded.tile(0));
        assert_eq!(a.path(), b.path());
        assert_eq!(a.retired(), b.retired());
        assert_eq!(a.func(), b.func());
        let mut insts: Vec<_> = a.mem_insts().collect();
        insts.sort();
        for i in insts {
            assert_eq!(a.mem_stream(i), b.mem_stream(i));
        }
        assert_eq!(a.accel_invocations(), b.accel_invocations());
        assert_eq!(trace.size_report(), loaded.size_report());
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let trace = sample_trace();
        let path = std::env::temp_dir().join("mosaic_trace_test.mstr");
        trace.save(&path).unwrap();
        let loaded = KernelTrace::load(&path).unwrap();
        assert_eq!(loaded.tile(0).path(), trace.tile(0).path());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let garbage = b"definitely not a trace";
        assert!(KernelTrace::read_from(&mut garbage.as_ref()).is_err());
        // Right magic, wrong version.
        let mut bad = Vec::new();
        bad.extend_from_slice(b"MSTR");
        bad.extend_from_slice(&99u32.to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        assert!(KernelTrace::read_from(&mut bad.as_slice()).is_err());
    }

    /// A wrong-magic error must say what it expected and what it found,
    /// so a user who pointed the simulator at the wrong file can tell at
    /// a glance.
    #[test]
    fn wrong_magic_error_names_expected_and_found() {
        let err = KernelTrace::read_from(&mut b"MCKPxxxx".as_ref()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("MSTR"), "no expected magic in: {msg}");
        assert!(msg.contains("MCKP"), "no found magic in: {msg}");
    }

    /// A future-version error must name both versions so the fix
    /// (upgrade the reader, or regenerate the trace) is obvious.
    #[test]
    fn future_version_error_names_both_versions() {
        let mut bad = Vec::new();
        bad.extend_from_slice(MAGIC);
        bad.extend_from_slice(&7u32.to_le_bytes());
        let err = KernelTrace::read_from(&mut bad.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("version 7"), "no found version in: {msg}");
        assert!(
            msg.contains(&format!("version {VERSION}")),
            "no supported version in: {msg}"
        );
    }

    /// `load` must name the offending path in every failure — missing
    /// file, bad magic, and truncation (reported as truncation, not as a
    /// bare UnexpectedEof).
    #[test]
    fn load_errors_name_the_path() {
        let dir = std::env::temp_dir();

        let missing = dir.join("mosaic_trace_missing.mstr");
        let msg = KernelTrace::load(&missing).unwrap_err().to_string();
        assert!(msg.contains("mosaic_trace_missing.mstr"), "{msg}");

        let wrong_magic = dir.join("mosaic_trace_wrong_magic.mstr");
        std::fs::write(&wrong_magic, b"ELF\x7fgarbage").unwrap();
        let msg = KernelTrace::load(&wrong_magic).unwrap_err().to_string();
        assert!(msg.contains("mosaic_trace_wrong_magic.mstr"), "{msg}");
        assert!(msg.contains("MSTR"), "{msg}");
        std::fs::remove_file(&wrong_magic).ok();

        let mut buf = Vec::new();
        sample_trace().write_to(&mut buf).unwrap();
        let truncated = dir.join("mosaic_trace_truncated.mstr");
        std::fs::write(&truncated, &buf[..buf.len() / 2]).unwrap();
        let err = KernelTrace::load(&truncated).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let msg = err.to_string();
        assert!(msg.contains("mosaic_trace_truncated.mstr"), "{msg}");
        assert!(msg.contains("truncated"), "{msg}");
        std::fs::remove_file(&truncated).ok();
    }

    #[test]
    fn truncated_file_is_an_error_not_a_panic() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        for cut in [5usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(
                KernelTrace::read_from(&mut &buf[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
    }
}
