//! Textual IR round-trip integration: every benchmark kernel prints,
//! re-parses, and simulates to the *same cycle count* — a strong check
//! that the printer/parser preserve execution-relevant structure.

use std::sync::Arc;

use mosaicsim::kernels::build_parboil;
use mosaicsim::prelude::*;

fn cycles_of(module: &Module, name: &str, args: &[mosaicsim::ir::RtVal], mem: MemImage) -> u64 {
    let func = module.function_by_name(name).expect("kernel present");
    let programs = vec![TileProgram::single(func, args.to_vec())];
    let (trace, _) = record_trace(module, mem, &programs).expect("trace");
    SystemBuilder::new(Arc::new(module.clone()), Arc::new(trace))
        .memory(small_memory())
        .core(CoreConfig::out_of_order(), func, 0)
        .run()
        .expect("simulate")
        .cycles
}

#[test]
fn printed_and_parsed_kernels_simulate_identically() {
    for name in ["sgemm", "spmv", "histo", "stencil"] {
        let p = build_parboil(name, 1);
        let original = cycles_of(&p.module, p.module.function(p.func).name(), &p.args, p.mem.clone());
        let text = print_module(&p.module);
        let reparsed = parse_module(&text).expect("parse");
        let roundtrip = cycles_of(
            &reparsed,
            p.module.function(p.func).name(),
            &p.args,
            p.mem.clone(),
        );
        assert_eq!(
            original, roundtrip,
            "{name}: parsed module must time identically"
        );
    }
}

#[test]
fn all_kernels_print_and_reparse() {
    for name in mosaicsim::kernels::PARBOIL_NAMES {
        let p = build_parboil(name, 1);
        let text = print_module(&p.module);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("{name} failed to reparse: {e}"));
        assert_eq!(reparsed.functions().count(), p.module.functions().count());
        // Second round trip is a fixed point.
        assert_eq!(print_module(&reparsed), text, "{name} not a fixed point");
    }
}
