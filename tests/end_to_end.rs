//! End-to-end integration tests: build → trace → simulate across crates,
//! exercising the public facade exactly as a downstream user would.

use std::sync::Arc;

use mosaicsim::kernels::{build_parboil, PARBOIL_NAMES};
use mosaicsim::prelude::*;

/// Traces a kernel once and simulates it under `config`.
fn simulate(name: &str, tiles: usize, config: CoreConfig) -> SimReport {
    let p = build_parboil(name, 1);
    let (trace, _) = p.trace(tiles).expect("trace");
    let module = Arc::new(p.module);
    let trace = Arc::new(trace);
    let mut builder = SystemBuilder::new(module, trace).memory(xeon_memory());
    for t in 0..tiles {
        builder = builder.core(config.clone(), p.func, t);
    }
    builder.run().expect("simulate")
}

#[test]
fn every_parboil_kernel_simulates_on_ooo() {
    for name in PARBOIL_NAMES {
        let report = simulate(name, 1, CoreConfig::out_of_order());
        assert!(report.cycles > 0, "{name} produced no cycles");
        assert!(report.ipc() > 0.05, "{name} IPC implausibly low");
        assert!(report.ipc() < 16.0, "{name} IPC implausibly high");
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = simulate("spmv", 2, CoreConfig::out_of_order());
    let b = simulate("spmv", 2, CoreConfig::out_of_order());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total_retired, b.total_retired);
    assert_eq!(a.mem, b.mem);
}

#[test]
fn ooo_beats_ino_on_every_kernel() {
    for name in ["sgemm", "spmv", "stencil"] {
        let ooo = simulate(name, 1, CoreConfig::out_of_order());
        let ino = simulate(name, 1, CoreConfig::in_order());
        assert!(
            ooo.cycles < ino.cycles,
            "{name}: OoO ({}) not faster than InO ({})",
            ooo.cycles,
            ino.cycles
        );
    }
}

#[test]
fn compute_bound_kernels_scale_better_than_latency_bound() {
    let speedup = |name: &str| {
        let one = simulate(name, 1, CoreConfig::out_of_order()).cycles as f64;
        let four = simulate(name, 4, CoreConfig::out_of_order()).cycles as f64;
        one / four
    };
    let sgemm = speedup("sgemm");
    let bfs = speedup("bfs");
    assert!(
        sgemm > bfs,
        "SGEMM ({sgemm:.2}x) should scale better than BFS ({bfs:.2}x)"
    );
    assert!(sgemm > 2.5, "SGEMM 4-tile speedup too low: {sgemm:.2}");
}

#[test]
fn memory_bound_kernel_has_lower_ipc_than_compute_bound() {
    let bfs = simulate("bfs", 1, CoreConfig::out_of_order());
    let sad = simulate("sad", 1, CoreConfig::out_of_order());
    assert!(
        bfs.ipc() < sad.ipc(),
        "bfs IPC {:.2} should be below sad IPC {:.2} (paper Fig. 6)",
        bfs.ipc(),
        sad.ipc()
    );
}

#[test]
fn report_accounts_energy_and_memory() {
    let r = simulate("stencil", 1, CoreConfig::out_of_order());
    assert!(r.core_energy_pj > 0.0);
    assert!(r.mem_energy_pj > 0.0);
    assert!(r.mem.l1_hits + r.mem.l1_misses > 0);
    let total = r.total_energy_pj();
    assert!(total >= r.core_energy_pj + r.mem_energy_pj);
}
