//! Differential test for checkpoint/restore (DESIGN.md §4.6).
//!
//! The contract: resuming from a snapshot taken at cycle N is
//! *bit-identical* to a straight-through run — the final report (cycles,
//! per-tile stats, memory stats, energy bit patterns), the full stats
//! registry, and the IR profile may not differ in any way. The snapshot
//! cycle is drawn from a seeded SplitMix64 generator per configuration,
//! so each run of the suite probes the same pause points but those
//! points land mid-flight in the pipeline, the MAO, the MSHRs, and the
//! DRAM queues rather than at hand-picked quiet cycles.
//!
//! The matrix: 5 bundled kernels × {in-order, out-of-order} ×
//! {fast-forward, naive} stepping.

use std::sync::Arc;

use mosaicsim::kernels::build_parboil;
use mosaicsim::prelude::*;

/// SplitMix64 — a tiny seeded generator for the snapshot cycles.
struct TestRng(u64);
impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// The builder for one configuration of the matrix. Straight run, prefix
/// run, and resumed run must all construct the identical system, so all
/// three go through this.
fn builder_for(p: &Prepared, trace: &Arc<KernelTrace>, config: &CoreConfig, ff: bool) -> SystemBuilder {
    SystemBuilder::new(Arc::new(p.module.clone()), trace.clone())
        .memory(xeon_memory())
        .fast_forward(ff)
        .observe(ObsLevel::Stats)
        .core(config.clone().with_name("diff"), p.func, 0)
}

/// Asserts every observable of the two runs is identical: the report
/// fields, energy bit patterns, the full registry dump, and the profile.
fn assert_identical(straight: &SimReport, resumed: &SimReport, label: &str) {
    assert_eq!(straight.cycles, resumed.cycles, "{label}: cycle count diverged");
    assert_eq!(
        straight.total_retired, resumed.total_retired,
        "{label}: retired count diverged"
    );
    assert_eq!(straight.mem, resumed.mem, "{label}: memory stats diverged");
    assert_eq!(
        straight.dram_throttled, resumed.dram_throttled,
        "{label}: DRAM throttle accounting diverged"
    );
    for (s, r) in straight.tiles.iter().zip(&resumed.tiles) {
        assert_eq!(s, r, "{label}: tile {} stats diverged", s.name);
    }
    for (field, s, r) in [
        ("core", straight.core_energy_pj, resumed.core_energy_pj),
        ("mem", straight.mem_energy_pj, resumed.mem_energy_pj),
        ("static", straight.static_energy_pj, resumed.static_energy_pj),
    ] {
        assert_eq!(s.to_bits(), r.to_bits(), "{label}: {field} energy diverged");
    }
    assert_eq!(
        straight.registry, resumed.registry,
        "{label}: registry dump diverged"
    );
    assert_eq!(straight.profile, resumed.profile, "{label}: IR profile diverged");
}

/// Snapshot at a seeded-random cycle, resume, and demand bit-identity
/// with the straight-through run, across the full kernel × core ×
/// stepping matrix.
#[test]
fn resume_is_bit_identical_to_straight_run() {
    let kernels = ["bfs", "sgemm", "spmv", "histo", "stencil"];
    let cores = [
        ("in_order", CoreConfig::in_order()),
        ("out_of_order", CoreConfig::out_of_order()),
    ];
    let mut rng = TestRng(0x6d6f_7361_6963_736d); // "mosaicsm"
    for name in kernels {
        let p = build_parboil(name, 1);
        let (trace, _) = p.trace(1).expect("trace");
        let trace = Arc::new(trace);
        for (core_label, config) in &cores {
            for ff in [true, false] {
                let label = format!("{name}/{core_label}/{}", if ff { "ff" } else { "naive" });

                let straight = builder_for(&p, &trace, config, ff)
                    .run()
                    .unwrap_or_else(|e| panic!("{label}: straight run failed: {e}"));

                // Snapshot somewhere strictly inside the run, away from
                // the trivially-correct cycle-0 edge.
                let snap = 1 + rng.below(straight.cycles - 1);

                let mut il = builder_for(&p, &trace, config, ff)
                    .build()
                    .unwrap_or_else(|e| panic!("{label}: build failed: {e}"));
                let paused = il.run_until(snap).expect("prefix run");
                assert_eq!(paused, None, "{label}: prefix finished before cycle {snap}");
                // Fast-forwarding may overshoot the requested cycle (the
                // pause lands on the first *stepped* cycle at or past
                // it); the snapshot cycle just has to be inside the run.
                let ckpt = Arc::new(il.save_checkpoint());
                assert!(
                    ckpt.cycle() >= snap && ckpt.cycle() < straight.cycles,
                    "{label}: snapshot at cycle {} for request {snap}",
                    ckpt.cycle()
                );

                let resumed = builder_for(&p, &trace, config, ff)
                    .resume_from_checkpoint(ckpt)
                    .run()
                    .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));

                assert_identical(&straight, &resumed, &format!("{label}@{snap}"));
            }
        }
    }
}

/// The same contract through the file format: save the snapshot to disk,
/// resume with [`SystemBuilder::resume_from`], and demand bit-identity.
/// Also checks that a resumed run can itself checkpoint periodically.
#[test]
fn resume_through_a_file_is_bit_identical() {
    let p = build_parboil("sgemm", 1);
    let (trace, _) = p.trace(1).expect("trace");
    let trace = Arc::new(trace);
    let config = CoreConfig::out_of_order();

    let straight = builder_for(&p, &trace, &config, true).run().expect("straight");

    let mut il = builder_for(&p, &trace, &config, true).build().expect("build");
    assert_eq!(il.run_until(straight.cycles / 2).expect("prefix"), None);
    let dir = std::env::temp_dir();
    let path = dir.join("mosaic_ckpt_differential.mckpt");
    il.save_checkpoint().save(&path).expect("save checkpoint");

    let repath = dir.join("mosaic_ckpt_differential_re.mckpt");
    let resumed = builder_for(&p, &trace, &config, true)
        .resume_from(&path)
        .checkpoint_every(straight.cycles / 4)
        .checkpoint_to(&repath)
        .run()
        .expect("resume");
    assert_identical(&straight, &resumed, "sgemm/file");

    // The periodic snapshot the resumed run wrote must itself be loadable
    // and land at a cycle the policy says it should.
    let periodic = mosaicsim::ckpt::Checkpoint::load(&repath).expect("periodic snapshot");
    assert!(periodic.cycle() > straight.cycles / 2);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&repath).ok();
}

/// Resuming into a *different* system is a checkpoint error, not
/// undefined behavior: the tile fingerprint is verified.
#[test]
fn resume_rejects_a_mismatched_system() {
    let p = build_parboil("histo", 1);
    let (trace, _) = p.trace(1).expect("trace");
    let trace = Arc::new(trace);
    let config = CoreConfig::in_order();

    let mut il = builder_for(&p, &trace, &config, true).build().expect("build");
    assert_eq!(il.run_until(500).expect("prefix"), None);
    let ckpt = Arc::new(il.save_checkpoint());

    // Same kernel, different tile name: the fingerprint no longer
    // matches.
    let err = SystemBuilder::new(Arc::new(p.module.clone()), trace.clone())
        .memory(xeon_memory())
        .core(config.clone().with_name("other"), p.func, 0)
        .resume_from_checkpoint(ckpt)
        .run()
        .expect_err("mismatched resume must fail");
    match err {
        MosaicError::Ckpt { message } => {
            assert!(message.contains("other"), "unhelpful mismatch message: {message}");
        }
        other => panic!("expected a checkpoint error, got {other}"),
    }
}
