//! Differential test for the event-horizon fast-forward scheduler
//! (DESIGN.md §"Event-horizon fast-forwarding").
//!
//! The fast-forward path must be an *optimization*, never a semantic
//! change: for every kernel × core model × tile count, the cycle count,
//! every per-tile statistic (including stall breakdowns), the memory
//! statistics, DRAM throttle accounting, and all energy totals must be
//! bit-identical to the naive cycle-by-cycle stepper.

use std::sync::Arc;

use mosaicsim::kernels::build_parboil;
use mosaicsim::prelude::*;

/// Simulates `name` on `tiles` copies of `config`, with or without
/// fast-forwarding, and returns the full report.
fn simulate(name: &str, tiles: usize, config: &CoreConfig, fast_forward: bool) -> SimReport {
    let p = build_parboil(name, 1);
    let (trace, _) = p.trace(tiles).expect("trace");
    let module = Arc::new(p.module);
    let trace = Arc::new(trace);
    let mut builder = SystemBuilder::new(module, trace)
        .memory(xeon_memory())
        .fast_forward(fast_forward);
    for t in 0..tiles {
        builder = builder.core(config.clone().with_name(&format!("c{t}")), p.func, t);
    }
    builder.run().expect("simulate")
}

/// Asserts every observable field of two reports is identical.
fn assert_reports_identical(naive: &SimReport, fast: &SimReport, label: &str) {
    assert_eq!(naive.cycles, fast.cycles, "{label}: cycle count diverged");
    assert_eq!(
        naive.total_retired, fast.total_retired,
        "{label}: retired count diverged"
    );
    assert_eq!(naive.mem, fast.mem, "{label}: memory stats diverged");
    assert_eq!(
        naive.dram_throttled, fast.dram_throttled,
        "{label}: DRAM throttle accounting diverged"
    );
    assert_eq!(
        naive.tiles.len(),
        fast.tiles.len(),
        "{label}: tile count diverged"
    );
    for (n, f) in naive.tiles.iter().zip(&fast.tiles) {
        assert_eq!(n, f, "{label}: tile {} stats diverged", n.name);
    }
    assert_eq!(
        naive.core_energy_pj.to_bits(),
        fast.core_energy_pj.to_bits(),
        "{label}: core energy diverged"
    );
    assert_eq!(
        naive.mem_energy_pj.to_bits(),
        fast.mem_energy_pj.to_bits(),
        "{label}: memory energy diverged"
    );
    assert_eq!(
        naive.static_energy_pj.to_bits(),
        fast.static_energy_pj.to_bits(),
        "{label}: static energy diverged"
    );
}

/// The full matrix from the issue: ≥4 Parboil kernels × {in-order,
/// out-of-order} × {1, 4} tiles.
#[test]
fn fast_forward_is_bit_identical_to_naive() {
    let kernels = ["bfs", "sgemm", "spmv", "histo", "stencil"];
    let cores = [
        ("in_order", CoreConfig::in_order()),
        ("out_of_order", CoreConfig::out_of_order()),
    ];
    for name in kernels {
        for (core_label, config) in &cores {
            for tiles in [1usize, 4] {
                let label = format!("{name}/{core_label}/{tiles}t");
                let naive = simulate(name, tiles, config, false);
                let fast = simulate(name, tiles, config, true);
                assert_reports_identical(&naive, &fast, &label);
            }
        }
    }
}

/// Fast-forwarding must also preserve behavior under a banked
/// (DRAMSim-style) backend, whose horizon comes from bank state rather
/// than the SimpleDRAM epoch equation.
#[test]
fn fast_forward_identical_with_banked_dram() {
    let p = build_parboil("bfs", 1);
    let run = |fast_forward: bool| {
        let (trace, _) = p.trace(2).expect("trace");
        let mut memory = xeon_memory();
        memory.dram = DramKind::Banked(Default::default());
        let mut builder = SystemBuilder::new(Arc::new(p.module.clone()), Arc::new(trace))
            .memory(memory)
            .fast_forward(fast_forward);
        for t in 0..2 {
            builder = builder.core(
                CoreConfig::out_of_order().with_name(&format!("c{t}")),
                p.func,
                t,
            );
        }
        builder.run().expect("simulate")
    };
    let naive = run(false);
    let fast = run(true);
    assert_reports_identical(&naive, &fast, "bfs/banked/2t");
}
