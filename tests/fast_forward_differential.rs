//! Differential test for the event-horizon fast-forward scheduler
//! (DESIGN.md §"Event-horizon fast-forwarding").
//!
//! The fast-forward path must be an *optimization*, never a semantic
//! change: for every kernel × core model × tile count, the cycle count,
//! every per-tile statistic (including stall breakdowns), the memory
//! statistics, DRAM throttle accounting, and all energy totals must be
//! bit-identical to the naive cycle-by-cycle stepper.

use std::sync::Arc;

use mosaicsim::kernels::build_parboil;
use mosaicsim::prelude::*;

/// Simulates `name` on `tiles` copies of `config`, with or without
/// fast-forwarding, and returns the full report.
fn simulate(name: &str, tiles: usize, config: &CoreConfig, fast_forward: bool) -> SimReport {
    let p = build_parboil(name, 1);
    let (trace, _) = p.trace(tiles).expect("trace");
    let module = Arc::new(p.module);
    let trace = Arc::new(trace);
    let mut builder = SystemBuilder::new(module, trace)
        .memory(xeon_memory())
        .fast_forward(fast_forward);
    for t in 0..tiles {
        builder = builder.core(config.clone().with_name(&format!("c{t}")), p.func, t);
    }
    builder.run().expect("simulate")
}

/// Asserts every observable field of two reports is identical.
fn assert_reports_identical(naive: &SimReport, fast: &SimReport, label: &str) {
    assert_eq!(naive.cycles, fast.cycles, "{label}: cycle count diverged");
    assert_eq!(
        naive.total_retired, fast.total_retired,
        "{label}: retired count diverged"
    );
    assert_eq!(naive.mem, fast.mem, "{label}: memory stats diverged");
    assert_eq!(
        naive.dram_throttled, fast.dram_throttled,
        "{label}: DRAM throttle accounting diverged"
    );
    assert_eq!(
        naive.tiles.len(),
        fast.tiles.len(),
        "{label}: tile count diverged"
    );
    for (n, f) in naive.tiles.iter().zip(&fast.tiles) {
        assert_eq!(n, f, "{label}: tile {} stats diverged", n.name);
    }
    assert_eq!(
        naive.core_energy_pj.to_bits(),
        fast.core_energy_pj.to_bits(),
        "{label}: core energy diverged"
    );
    assert_eq!(
        naive.mem_energy_pj.to_bits(),
        fast.mem_energy_pj.to_bits(),
        "{label}: memory energy diverged"
    );
    assert_eq!(
        naive.static_energy_pj.to_bits(),
        fast.static_energy_pj.to_bits(),
        "{label}: static energy diverged"
    );
}

/// The full matrix from the issue: ≥4 Parboil kernels × {in-order,
/// out-of-order} × {1, 4} tiles.
#[test]
fn fast_forward_is_bit_identical_to_naive() {
    let kernels = ["bfs", "sgemm", "spmv", "histo", "stencil"];
    let cores = [
        ("in_order", CoreConfig::in_order()),
        ("out_of_order", CoreConfig::out_of_order()),
    ];
    for name in kernels {
        for (core_label, config) in &cores {
            for tiles in [1usize, 4] {
                let label = format!("{name}/{core_label}/{tiles}t");
                let naive = simulate(name, tiles, config, false);
                let fast = simulate(name, tiles, config, true);
                assert_reports_identical(&naive, &fast, &label);
            }
        }
    }
}

/// Error verdicts are part of the differential contract too: a deadlock
/// must produce the *same* [`SimError::Deadlock`] — same blocked cycle,
/// same per-tile reasons, same channel occupancies — whether it is found
/// by the fast-forward event survey or by the naive-path watchdog.
#[test]
fn deadlock_verdict_is_bit_identical_to_naive() {
    use mosaicsim::core::{record_trace, MosaicError, SimError};
    use mosaicsim::ir::{Constant, FunctionBuilder, MemImage, Module, RtVal, TileProgram, Type};

    let mut m = Module::new("dl");
    let produce = m.add_function("produce", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(produce));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |b, i| b.send(0, i));
    b.ret(None);
    let consume = m.add_function("consume", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(consume));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |b, _| {
        b.recv(0, Type::I64);
    });
    b.ret(None);
    mosaicsim::ir::verify_module(&m).expect("verify");

    // Producer sends 64, consumer takes 16: the producer eventually
    // deadlocks against the capacity-8 channel.
    let programs = vec![
        TileProgram::single(produce, vec![RtVal::Int(64)]),
        TileProgram::single(consume, vec![RtVal::Int(16)]),
    ];
    let (trace, _) = record_trace(&m, MemImage::new(), &programs).expect("functional run");
    let (m, trace) = (Arc::new(m), Arc::new(trace));

    let run = |fast_forward: bool| {
        SystemBuilder::new(m.clone(), trace.clone())
            .memory(xeon_memory())
            .channels(ChannelConfig {
                capacity: 8,
                latency: 1,
            })
            .core(CoreConfig::in_order().with_name("p"), produce, 0)
            .core(CoreConfig::in_order().with_name("c"), consume, 1)
            .fast_forward(fast_forward)
            .watchdog_window(16)
            .run()
            .expect_err("must deadlock")
    };
    let naive = run(false);
    let fast = run(true);
    assert!(
        matches!(&fast, MosaicError::Sim(SimError::Deadlock { .. })),
        "expected deadlock, got {fast:?}"
    );
    assert_eq!(naive, fast, "deadlock verdict diverged between modes");
}

/// Fast-forwarding must also preserve behavior under a banked
/// (DRAMSim-style) backend, whose horizon comes from bank state rather
/// than the SimpleDRAM epoch equation.
#[test]
fn fast_forward_identical_with_banked_dram() {
    let p = build_parboil("bfs", 1);
    let run = |fast_forward: bool| {
        let (trace, _) = p.trace(2).expect("trace");
        let mut memory = xeon_memory();
        memory.dram = DramKind::Banked(Default::default());
        let mut builder = SystemBuilder::new(Arc::new(p.module.clone()), Arc::new(trace))
            .memory(memory)
            .fast_forward(fast_forward);
        for t in 0..2 {
            builder = builder.core(
                CoreConfig::out_of_order().with_name(&format!("c{t}")),
                p.func,
                t,
            );
        }
        builder.run().expect("simulate")
    };
    let naive = run(false);
    let fast = run(true);
    assert_reports_identical(&naive, &fast, "bfs/banked/2t");
}
