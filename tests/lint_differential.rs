//! Static/dynamic differential tests for `mosaic-lint` (DESIGN.md §4.4).
//!
//! The linter's contract is *soundness of errors*: every error-severity
//! finding must correspond to a real dynamic failure, and every bundled
//! kernel must lint clean and actually terminate. These tests pin both
//! directions against the simulator:
//!
//! * the deadlock-detection scenarios of `tests/deadlock_detection.rs`
//!   are flagged statically — naming the channel and the blocking
//!   instruction — *and* deadlock dynamically;
//! * the balanced scenario is statically clean and terminates;
//! * every bundled paper kernel lints clean at `Deny` and completes
//!   functional execution (and a representative subset completes the
//!   full timing simulation).

use std::sync::Arc;

use mosaicsim::core::{record_trace, Interleaver, MosaicError, SimError, SystemBuilder};
use mosaicsim::ir::{Constant, FunctionBuilder, MemImage, Module, RtVal, TileProgram, Type};
use mosaicsim::kernels::{build_parboil, Prepared, PARBOIL_NAMES};
use mosaicsim::lint::{lint_system, LintReport, Severity, TileBinding};
use mosaicsim::mem::MemoryHierarchy;
use mosaicsim::tile::{ChannelConfig, ChannelSet, CoreConfig, CoreTile, NoAccel, Tile};

/// Producer sends `n` values on queue 0; consumer receives `n` values.
fn chatter_module() -> (Module, mosaicsim::ir::FuncId, mosaicsim::ir::FuncId) {
    let mut m = Module::new("chatter");
    let produce = m.add_function("produce", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(produce));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |b, i| {
        b.send(0, i);
    });
    b.ret(None);

    let consume = m.add_function("consume", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(consume));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |b, _i| {
        b.recv(0, Type::I64);
    });
    b.ret(None);
    mosaicsim::ir::verify_module(&m).expect("verify");
    (m, produce, consume)
}

/// Statically lints the chatter system under concrete bindings.
fn lint_chatter(sends: i64, recvs: i64, consumer_offset: u32) -> LintReport {
    let (m, produce, consume) = chatter_module();
    let tiles = vec![
        TileBinding::new(produce, 0, vec![Some(sends)]),
        TileBinding::new(consume, consumer_offset, vec![Some(recvs)]),
    ];
    lint_system(&m, &tiles)
}

/// Runs the chatter system through the timing simulator.
fn run_chatter(
    sends: i64,
    recvs: i64,
    consumer_offset: u32,
) -> Result<mosaicsim::core::SimReport, MosaicError> {
    let (m, produce, consume) = chatter_module();
    let programs = vec![
        TileProgram::single(produce, vec![RtVal::Int(sends)]),
        TileProgram::single(consume, vec![RtVal::Int(recvs)]),
    ];
    let (trace, _) = record_trace(&m, MemImage::new(), &programs).expect("functional run");
    SystemBuilder::new(Arc::new(m), Arc::new(trace))
        .memory(mosaicsim::core::small_memory())
        .channels(ChannelConfig {
            capacity: 8,
            latency: 1,
        })
        .core(CoreConfig::in_order().with_name("producer"), produce, 0)
        .core(
            CoreConfig::in_order()
                .with_name("consumer")
                .with_queue_offset(consumer_offset),
            consume,
            1,
        )
        .run()
}

fn assert_deadlocks(result: Result<mosaicsim::core::SimReport, MosaicError>) {
    assert!(
        matches!(result, Err(MosaicError::Sim(SimError::Deadlock { .. }))),
        "expected a dynamic deadlock"
    );
}

/// Every error must name the channel and the blocking instruction, so a
/// user can find the offending send/recv without running anything.
fn assert_names_channel_and_inst(report: &LintReport, queue: u32) {
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error && d.queue == Some(queue))
        .unwrap_or_else(|| panic!("no error naming q{queue}: {report}"));
    assert!(d.inst.is_some(), "finding must name the instruction: {d}");
    assert!(
        d.message.contains(&format!("q{queue}")),
        "message must name the channel: {d}"
    );
}

/// Scenario 1 of `deadlock_detection.rs`: 100 sends vs 10 recvs. The
/// linter proves the imbalance from the loop trip counts and names the
/// send that will block; the simulator confirms with `SendFull`.
#[test]
fn overproduction_flagged_statically_and_deadlocks() {
    let report = lint_chatter(100, 10, 0);
    assert_names_channel_and_inst(&report, 0);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("100 value(s) sent but only 10 received")),
        "{report}"
    );
    assert_deadlocks(run_chatter(100, 10, 0));
}

/// Scenario 2: the consumer's queue offset strands both endpoints. The
/// linter flags both orphaned channels; the simulator deadlocks with the
/// producer on full q0 and the consumer on empty q7.
#[test]
fn queue_offset_mismatch_flagged_statically_and_deadlocks() {
    let report = lint_chatter(20, 20, 7);
    assert_names_channel_and_inst(&report, 0);
    assert_names_channel_and_inst(&report, 7);
    assert_deadlocks(run_chatter(20, 20, 7));
}

/// Scenario 3: 5 sends vs 10 recvs. The linter names the recv that
/// starves; dynamically the consumer hangs on the drained channel. The
/// mismatch cannot execute functionally, so — like the corresponding
/// `deadlock_detection.rs` scenario — the timing system is spliced from
/// two matched recordings and driven through the Interleaver directly.
#[test]
fn starved_consumer_flagged_statically_and_deadlocks() {
    let report = lint_chatter(5, 10, 0);
    assert_names_channel_and_inst(&report, 0);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("10 value(s) received but only 5 sent")),
        "{report}"
    );

    let (m, produce, consume) = chatter_module();
    let record = |n: i64| {
        let programs = vec![
            TileProgram::single(produce, vec![RtVal::Int(n)]),
            TileProgram::single(consume, vec![RtVal::Int(n)]),
        ];
        record_trace(&m, MemImage::new(), &programs).expect("functional run").0
    };
    let short = record(5);
    let long = record(10);
    let module = Arc::new(m);
    let producer = CoreTile::new(
        CoreConfig::in_order(),
        module.clone(),
        produce,
        Arc::new(short.tile(0).clone()),
        0,
    );
    let consumer = CoreTile::new(
        CoreConfig::in_order(),
        module,
        consume,
        Arc::new(long.tile(1).clone()),
        1,
    );
    let tiles: Vec<Box<dyn Tile>> = vec![Box::new(producer), Box::new(consumer)];
    let mem = MemoryHierarchy::new(mosaicsim::core::small_memory(), 2);
    let channels = ChannelSet::new(ChannelConfig {
        capacity: 8,
        latency: 1,
    });
    let mut il = Interleaver::new(tiles, mem, channels, Box::new(NoAccel));
    let err = il.run().expect_err("must deadlock");
    assert!(matches!(err, SimError::Deadlock { .. }), "{err:?}");
}

/// Scenario 4: balanced 200/200 — slow but live. The linter must NOT
/// flag it (no false positives), and the system runs to completion.
#[test]
fn balanced_chatter_is_clean_and_terminates() {
    let report = lint_chatter(200, 200, 0);
    assert!(report.is_clean(), "false positive: {report}");
    let sim = run_chatter(200, 200, 0).expect("balanced system must terminate");
    assert!(sim.cycles > 0);
}

/// Bindings for a prepared kernel as an SPMD system on `tiles` tiles.
fn kernel_bindings(p: &Prepared, tiles: usize) -> Vec<TileBinding> {
    p.programs(tiles)
        .iter()
        .map(TileBinding::from_program)
        .collect()
}

/// Every bundled kernel lints clean at `Deny` (zero findings, not just
/// zero errors) and completes functional execution — the linter marks it
/// deadlock-free and it is.
#[test]
fn bundled_kernels_lint_clean_and_terminate_functionally() {
    let mut kernels: Vec<Prepared> = PARBOIL_NAMES
        .iter()
        .map(|n| build_parboil(n, 1))
        .collect();
    kernels.push(mosaicsim::kernels::projection::build(1));
    kernels.push(mosaicsim::kernels::sinkhorn::ewsd(1));
    kernels.push(mosaicsim::kernels::sinkhorn::sgemm_micro(1));
    for app in mosaicsim::kernels::keras::all_apps() {
        kernels.push(app.lower_accelerated());
    }
    for p in kernels {
        let report = lint_system(&p.module, &kernel_bindings(&p, 2));
        assert!(report.is_clean(), "{}: {report}", p.name);
        p.trace(2)
            .unwrap_or_else(|e| panic!("{} did not terminate: {e}", p.name));
    }
}

/// A representative subset of lint-clean kernels also completes the full
/// timing simulation (the Interleaver agrees with the static verdict).
#[test]
fn lint_clean_kernels_terminate_under_interleaver() {
    for name in ["sgemm", "spmv", "bfs"] {
        let p = build_parboil(name, 1);
        assert!(lint_system(&p.module, &kernel_bindings(&p, 2)).is_clean());
        let (trace, _) = p.trace(2).expect("trace");
        let module = Arc::new(p.module);
        let trace = Arc::new(trace);
        let mut builder = SystemBuilder::new(module, trace)
            .memory(mosaicsim::core::small_memory())
            .lint(mosaicsim::core::LintLevel::Deny);
        for t in 0..2 {
            builder = builder.core(CoreConfig::in_order(), p.func, t);
        }
        let report = builder.run().expect("lint-clean kernel must simulate");
        assert!(report.cycles > 0, "{name}");
    }
}
