//! Differential tests for the observability subsystem (DESIGN.md §4.5).
//!
//! Two contracts:
//!
//! 1. Every registry counter, histogram, and the per-instruction profile
//!    must be bit-identical between `.fast_forward(true)` and
//!    `.fast_forward(false)` — stall attribution multiplied over skipped
//!    cycles must reproduce naive per-cycle attribution exactly. The one
//!    exception is the `sim.ff.*` namespace, which *describes* the
//!    scheduler and is mode-dependent by design.
//!
//! 2. `ObsLevel::Off` must be free: an empty timeline, an empty profile,
//!    and cycle counts unchanged relative to a fully traced run.

use std::sync::Arc;

use mosaicsim::kernels::build_parboil;
use mosaicsim::obs::{StatValue, StatsRegistry};
use mosaicsim::prelude::*;

/// Simulates `name` on `tiles` copies of `config` at `level`.
fn simulate(
    name: &str,
    tiles: usize,
    config: &CoreConfig,
    fast_forward: bool,
    level: ObsLevel,
) -> SimReport {
    let p = build_parboil(name, 1);
    let (trace, _) = p.trace(tiles).expect("trace");
    let mut builder = SystemBuilder::new(Arc::new(p.module), Arc::new(trace))
        .memory(xeon_memory())
        .fast_forward(fast_forward)
        .observe(level);
    for t in 0..tiles {
        builder = builder.core(config.clone().with_name(&format!("c{t}")), p.func, t);
    }
    builder.run().expect("simulate")
}

/// The registry minus the intentionally mode-dependent `sim.ff.*`
/// scheduler diagnostics (naive stepping executes every cycle; the
/// fast-forward scheduler skips provably-idle ones).
fn without_scheduler_diagnostics(reg: &StatsRegistry) -> StatsRegistry {
    let mut out = reg.clone();
    out.retain(|path| !path.starts_with("sim.ff."));
    out
}

/// ISSUE contract: every registry counter (and the whole IR profile)
/// bit-identical under fast-forward vs naive stepping, across 5 bundled
/// kernels × in-order/out-of-order, at the sampling level.
#[test]
fn registry_and_profile_identical_across_scheduler_modes() {
    let kernels = ["bfs", "sgemm", "spmv", "histo", "stencil"];
    let cores = [
        ("in_order", CoreConfig::in_order()),
        ("out_of_order", CoreConfig::out_of_order()),
    ];
    for name in kernels {
        for (core_label, config) in &cores {
            let label = format!("{name}/{core_label}");
            let naive = simulate(name, 2, config, false, ObsLevel::Stats);
            let fast = simulate(name, 2, config, true, ObsLevel::Stats);
            assert_eq!(
                without_scheduler_diagnostics(&naive.registry),
                without_scheduler_diagnostics(&fast.registry),
                "{label}: registry diverged between naive and fast-forward"
            );
            assert_eq!(
                naive.profile, fast.profile,
                "{label}: IR profile diverged between naive and fast-forward"
            );
            assert!(
                !fast.profile.is_empty(),
                "{label}: profile empty at ObsLevel::Stats"
            );
        }
    }
}

/// Stall attribution must sum back to the per-tile aggregate stall
/// counters — the profile is a *breakdown* of TileStats, not a separate
/// estimate.
#[test]
fn profile_stalls_sum_to_tile_totals() {
    let report = simulate("spmv", 2, &CoreConfig::out_of_order(), true, ObsLevel::Stats);
    let profile_retired: u64 = report.profile.iter().map(|(_, p)| p.retired).sum();
    let tile_retired: u64 = report.tiles.iter().map(|t| t.retired).sum();
    assert_eq!(profile_retired, tile_retired, "retired attribution leaks");
    let profile_stalls: u64 = report.profile.iter().map(|(_, p)| p.total_stalls()).sum();
    let tile_stalls: u64 = report
        .tiles
        .iter()
        .map(|t| t.window_stalls + t.fu_stalls + t.mem_stalls + t.send_stalls + t.recv_stalls)
        .sum();
    assert_eq!(profile_stalls, tile_stalls, "stall attribution leaks");
}

/// ISSUE contract: `ObsLevel::Off` yields an empty timeline and profile
/// with cycle counts (and all registry counters) unchanged relative to a
/// fully traced run.
#[test]
fn off_level_is_free_and_unchanged() {
    let config = CoreConfig::out_of_order();
    let off = simulate("sgemm", 2, &config, true, ObsLevel::Off);
    let traced = simulate("sgemm", 2, &config, true, ObsLevel::Trace);
    assert!(off.timeline.is_empty(), "Off must record no spans");
    assert!(off.profile.is_empty(), "Off must attribute nothing");
    assert!(!traced.timeline.is_empty(), "Trace must record spans");
    assert_eq!(off.cycles, traced.cycles, "observability changed timing");
    // Every *counter* must be level-independent (histograms are sampled,
    // so they only exist at Stats and above — that is the point of the
    // gate, not a divergence).
    for (path, v) in traced.registry.iter() {
        if let StatValue::Counter(c) = v {
            if !path.starts_with("sim.ff.") {
                assert_eq!(
                    off.registry.counter(path),
                    *c,
                    "counter {path} depends on the observability level"
                );
            }
        }
    }
    // The registry is populated even at Off — reading is free.
    assert_eq!(off.registry.counter("sim.cycles"), off.cycles);
    assert!(off.registry.counter("tile.0.retired") > 0);
}

/// Timeline spans survive the fast-forward scheduler: every tile track
/// ends with a complete "active" span covering the run, and memory
/// request spans close at their completion cycles.
#[test]
fn trace_level_emits_complete_spans_per_tile() {
    let report = simulate("bfs", 2, &CoreConfig::in_order(), true, ObsLevel::Trace);
    for tile in 0..2u32 {
        assert!(
            report
                .timeline
                .spans()
                .iter()
                .any(|s| s.pid == 0 && s.tid == tile),
            "tile {tile} has no span"
        );
    }
    let chrome = report.timeline.to_chrome_json();
    // The dump must parse with the crate's own strict parser.
    let v = mosaicsim::obs::json::parse(&chrome).expect("chrome trace json parses");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents");
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(|p| p.as_str()) == Some("X")
            && e.get("dur").and_then(|d| d.as_u64()).unwrap_or(0) > 0
    }));
}
