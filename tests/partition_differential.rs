//! Static/dynamic differential tests for `mosaic-part` (DESIGN.md §4.7).
//!
//! The partitioner's contract is *conservatism*: every static bound it
//! publishes must be a lower bound on what the timing simulator actually
//! observes. These tests pin that contract against the Interleaver:
//!
//! * channel-edge send and delivery bounds never exceed the first
//!   dynamically observed send/recv cycle, on both in-order and
//!   out-of-order cores;
//! * the counted-loop launch gate (the mechanism that makes post-loop
//!   sends expensive) is conservative dynamically, not just in the
//!   fixpoint's own unit tests;
//! * the real DAE-sliced projection pipeline respects its statically
//!   computed delivery bounds on every queue;
//! * every bundled kernel yields a structurally valid plan whose JSON
//!   round-trips bit-identically.
//!
//! The static model used throughout is [`LatencyModel::default`]
//! (`alu = branch = channel = 1`, gate bounds on), which lower-bounds
//! every system built here: all core presets use static branch
//! prediction and both channel configs have latency 1.

use std::sync::Arc;

use mosaicsim::core::{record_trace, Interleaver, SimError};
use mosaicsim::ir::{Constant, FuncId, MemImage, Module, RtVal, TileProgram, Type};
use mosaicsim::kernels::{build_parboil, projection, sinkhorn, Prepared, PARBOIL_NAMES};
use mosaicsim::lint::TileBinding;
use mosaicsim::mem::MemoryHierarchy;
use mosaicsim::part::{partition, InterferenceGraph, LatencyModel, MemGeometry, PartitionPlan};
use mosaicsim::prelude::*;
use mosaicsim::tile::{ChannelSet, CoreTile, NoAccel, Tile};

/// Steps `il` to completion (capped) and returns, for each watched
/// queue, the first cycle a send completed and the first cycle a recv
/// completed (`None` = never happened).
fn observe_first_cycles(
    mut il: Interleaver,
    queues: &[u32],
) -> Vec<(Option<u64>, Option<u64>)> {
    il.set_fast_forward(false);
    let mut first: Vec<(Option<u64>, Option<u64>)> = vec![(None, None); queues.len()];
    for _ in 0..2_000_000u64 {
        let now = il.now();
        let done = match il.step() {
            Ok(d) => d,
            Err(SimError::Deadlock { .. }) => break,
            Err(e) => panic!("step failed: {e}"),
        };
        for (i, &q) in queues.iter().enumerate() {
            if let Some(ch) = il.channels().channel(q) {
                if first[i].0.is_none() && ch.sends() > 0 {
                    first[i].0 = Some(now);
                }
                if first[i].1.is_none() && ch.recvs() > 0 {
                    first[i].1 = Some(now);
                }
            }
        }
        if done {
            return first;
        }
    }
    panic!("cycle cap exceeded before completion");
}

/// Builds an Interleaver over `configs[i]` running `funcs[i]` with the
/// recorded per-tile traces.
fn interleaver(
    module: Arc<Module>,
    trace: &KernelTrace,
    parts: &[(CoreConfig, FuncId)],
    channel: ChannelConfig,
) -> Interleaver {
    let tiles: Vec<Box<dyn Tile>> = parts
        .iter()
        .enumerate()
        .map(|(i, (cfg, f))| {
            Box::new(CoreTile::new(
                cfg.clone(),
                module.clone(),
                *f,
                Arc::new(trace.tile(i).clone()),
                i,
            )) as Box<dyn Tile>
        })
        .collect();
    let mem = MemoryHierarchy::new(mosaicsim::core::small_memory(), parts.len());
    Interleaver::new(tiles, mem, ChannelSet::new(channel), Box::new(NoAccel))
}

/// Asserts every channel edge's static bounds against the dynamics:
/// `min_delivery - channel` never exceeds the first observed send, and
/// `min_delivery` never exceeds the first observed recv.
fn assert_edges_conservative(
    graph: &InterferenceGraph,
    model: &LatencyModel,
    il: Interleaver,
    label: &str,
) {
    assert!(
        !graph.channel_edges.is_empty(),
        "{label}: expected at least one channel edge"
    );
    let queues: Vec<u32> = graph.channel_edges.iter().map(|e| e.queue).collect();
    let observed = observe_first_cycles(il, &queues);
    for (e, (send, recv)) in graph.channel_edges.iter().zip(&observed) {
        let send = send.unwrap_or_else(|| panic!("{label}: q{} never sent", e.queue));
        let recv = recv.unwrap_or_else(|| panic!("{label}: q{} never received", e.queue));
        let static_send = e.min_delivery - model.channel;
        assert!(
            static_send <= send,
            "{label}: q{}: static send bound {static_send} > observed first send {send}",
            e.queue
        );
        assert!(
            e.min_delivery <= recv,
            "{label}: q{}: static delivery bound {} > observed first recv {recv}",
            e.queue,
            e.min_delivery
        );
    }
}

/// Producer sends `n` values in a loop; consumer receives `n` values.
fn chatter_module() -> (Module, FuncId, FuncId) {
    let mut m = Module::new("chatter");
    let produce = m.add_function("produce", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(produce));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |b, i| {
        b.send(0, i);
    });
    b.ret(None);

    let consume = m.add_function("consume", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(consume));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |b, _i| {
        b.recv(0, Type::I64);
    });
    b.ret(None);
    verify_module(&m).expect("verify");
    (m, produce, consume)
}

/// Producer runs a 100-trip compute loop, then sends once; consumer
/// receives once. The static send bound carries the loop's launch gate
/// (~trip count), so this exercises the expensive half of the analysis.
fn gated_module() -> (Module, FuncId, FuncId) {
    let mut m = Module::new("gated");
    let produce = m.add_function("produce", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(produce));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |_b, _i| {});
    b.send(0, Constant::i64(7).into());
    b.ret(None);

    let consume = m.add_function("consume", vec![], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(consume));
    let e = b.create_block("entry");
    b.switch_to(e);
    b.recv(0, Type::I64);
    b.ret(None);
    verify_module(&m).expect("verify");
    (m, produce, consume)
}

fn chatter_channel() -> ChannelConfig {
    ChannelConfig {
        capacity: 8,
        latency: 1,
    }
}

#[test]
fn chatter_bounds_are_conservative_on_both_core_models() {
    let (m, produce, consume) = chatter_module();
    let n = 50i64;
    let bindings = vec![
        TileBinding::new(produce, 0, vec![Some(n)]),
        TileBinding::new(consume, 0, vec![Some(n)]),
    ];
    let model = LatencyModel::default();
    let graph = InterferenceGraph::build(&m, &bindings, MemGeometry::default(), &model);

    let programs = vec![
        TileProgram::single(produce, vec![RtVal::Int(n)]),
        TileProgram::single(consume, vec![RtVal::Int(n)]),
    ];
    let (trace, _) = record_trace(&m, MemImage::new(), &programs).expect("trace");
    let module = Arc::new(m);
    for config in [CoreConfig::in_order(), CoreConfig::out_of_order()] {
        let name = config.name.clone();
        let il = interleaver(
            module.clone(),
            &trace,
            &[(config.clone(), produce), (config, consume)],
            chatter_channel(),
        );
        assert_edges_conservative(&graph, &model, il, &format!("chatter/{name}"));
    }
}

#[test]
fn counted_loop_gate_bound_is_conservative_dynamically() {
    let (m, produce, consume) = gated_module();
    let trips = 100i64;
    let bindings = vec![
        TileBinding::new(produce, 0, vec![Some(trips)]),
        TileBinding::new(consume, 0, vec![]),
    ];
    let model = LatencyModel::default();
    let graph = InterferenceGraph::build(&m, &bindings, MemGeometry::default(), &model);
    let edge = graph
        .channel_edges
        .iter()
        .find(|e| e.queue == 0)
        .expect("produce→consume edge");
    assert!(
        edge.min_delivery >= trips as u64,
        "the post-loop send must carry the launch gate, got {}",
        edge.min_delivery
    );

    let programs = vec![
        TileProgram::single(produce, vec![RtVal::Int(trips)]),
        TileProgram::single(consume, vec![]),
    ];
    let (trace, _) = record_trace(&m, MemImage::new(), &programs).expect("trace");
    let module = Arc::new(m);
    for config in [CoreConfig::in_order(), CoreConfig::out_of_order()] {
        let name = config.name.clone();
        let il = interleaver(
            module.clone(),
            &trace,
            &[(config.clone(), produce), (config, consume)],
            chatter_channel(),
        );
        assert_edges_conservative(&graph, &model, il, &format!("gated/{name}"));
    }
}

#[test]
fn dae_projection_delivery_bounds_are_conservative() {
    let mut p = projection::build_with(40, 64);
    let slices = slice_dae(&mut p.module, p.func, DaeQueues::default()).expect("sliceable");
    let programs = vec![
        TileProgram::single(slices.access, p.args.clone()),
        TileProgram::single(slices.execute, p.args.clone()),
    ];
    let bindings: Vec<TileBinding> = programs.iter().map(TileBinding::from_program).collect();
    let model = LatencyModel::default();
    let graph = InterferenceGraph::build(&p.module, &bindings, MemGeometry::default(), &model);

    let (trace, _) = record_trace(&p.module, p.mem.clone(), &programs).expect("trace");
    let module = Arc::new(p.module);
    let il = interleaver(
        module,
        &trace,
        &[
            (CoreConfig::dae_access(), slices.access),
            (CoreConfig::in_order(), slices.execute),
        ],
        dae_channel(),
    );
    assert_edges_conservative(&graph, &model, il, "dae-projection");
}

/// Every kernel the repository bundles, at a small scale (mirrors the
/// `mosaic-part` CLI's `--kernels` list).
fn bundled_kernels() -> Vec<Prepared> {
    let mut out: Vec<Prepared> = PARBOIL_NAMES.iter().map(|n| build_parboil(n, 1)).collect();
    out.push(projection::build(1));
    out.push(sinkhorn::ewsd(1));
    out.push(sinkhorn::sgemm_micro(1));
    out.push(sinkhorn::accel_sgemm_micro(1));
    for mix in [
        sinkhorn::Mix::DenseHeavy,
        sinkhorn::Mix::Equal,
        sinkhorn::Mix::SparseHeavy,
    ] {
        out.push(sinkhorn::combined(mix, 1, true));
    }
    for app in mosaicsim::kernels::keras::all_apps() {
        out.push(app.lower_accelerated());
    }
    out
}

#[test]
fn bundled_kernel_plans_validate_and_round_trip_bit_identically() {
    let model = LatencyModel::default();
    let mut nontrivial = 0usize;
    for p in bundled_kernels() {
        for tiles in [2usize, 4] {
            let bindings: Vec<TileBinding> = p
                .programs(tiles)
                .iter()
                .map(TileBinding::from_program)
                .collect();
            let graph =
                InterferenceGraph::build(&p.module, &bindings, MemGeometry::default(), &model);
            for shards in [2usize, 4] {
                let plan = partition(&graph, shards);
                plan.validate(bindings.len(), graph.geometry.num_banks)
                    .unwrap_or_else(|e| panic!("{}/{tiles}t/{shards}s: {e}", p.name));
                let json = plan.to_json();
                let back = PartitionPlan::from_json(&json)
                    .unwrap_or_else(|e| panic!("{}/{tiles}t/{shards}s: {e}", p.name));
                assert_eq!(
                    back.to_json(),
                    json,
                    "{}/{tiles}t/{shards}s: JSON round trip must be bit-identical",
                    p.name
                );
                if plan.is_nontrivial() {
                    nontrivial += 1;
                }
            }
        }
    }
    assert!(
        nontrivial >= 4,
        "the statically partitionable kernels (lbm, sgemm, stencil) must \
         yield non-trivial plans, got {nontrivial}"
    );
}
