//! Integration tests for accelerator-offloaded systems (paper §IV, §VII-B).

use std::sync::Arc;

use mosaicsim::accel::{analytic_estimate, fpga_cycles, rtl_cycles};
use mosaicsim::ir::AccelOp;
use mosaicsim::kernels::sinkhorn::{combined, Mix};
use mosaicsim::prelude::*;

fn simulate(p: &mosaicsim::kernels::Prepared, bank: AccelBank) -> SimReport {
    let (trace, _) = p.trace(1).expect("trace");
    SystemBuilder::new(Arc::new(p.module.clone()), Arc::new(trace))
        .memory(dae_memory())
        .accelerators(Box::new(bank))
        .core(CoreConfig::out_of_order(), p.func, 0)
        .run()
        .expect("simulate")
}

#[test]
fn accelerator_offload_speeds_up_dense_heavy_kernel() {
    let cpu = simulate(&combined(Mix::DenseHeavy, 1, false), AccelBank::with_defaults());
    let acc = simulate(&combined(Mix::DenseHeavy, 1, true), AccelBank::with_defaults());
    let speedup = cpu.cycles as f64 / acc.cycles as f64;
    assert!(
        speedup > 2.0,
        "SGEMM accelerator should pay off on a dense-heavy kernel: {speedup:.2}x"
    );
    let accel_invocations: u64 = acc.tiles.iter().map(|t| t.accel_invocations).sum();
    assert_eq!(accel_invocations, 1);
}

#[test]
fn accelerator_helps_less_on_sparse_heavy_kernel() {
    let ratio = |mix: Mix| {
        let cpu = simulate(&combined(mix, 1, false), AccelBank::with_defaults());
        let acc = simulate(&combined(mix, 1, true), AccelBank::with_defaults());
        cpu.cycles as f64 / acc.cycles as f64
    };
    let dense = ratio(Mix::DenseHeavy);
    let sparse = ratio(Mix::SparseHeavy);
    assert!(
        dense > sparse,
        "offload gain must shrink as the sparse phase dominates: dense {dense:.2}x vs sparse {sparse:.2}x"
    );
}

#[test]
fn model_accuracy_bands_hold_across_the_dse_grid() {
    // Fig. 10d aggregated: analytic-vs-RTL in the high 90s, analytic-vs-
    // FPGA high 80s/low 90s, for every accelerator and PLM size.
    for accel in [AccelOp::Sgemm, AccelOp::Histogram, AccelOp::ElementWise] {
        let mut rtl_accs = Vec::new();
        let mut fpga_accs = Vec::new();
        for plm_kb in [4u64, 16, 64, 256] {
            let cfg = AccelConfig::default().with_plm_bytes(plm_kb * 1024);
            let args = match accel {
                AccelOp::Sgemm => vec![0, 0, 0, 256, 256, 256],
                AccelOp::Histogram => vec![0, 0, 1 << 18, 256],
                AccelOp::ElementWise => vec![0, 0, 0, 1 << 18],
                _ => unreachable!(),
            };
            let a = analytic_estimate(accel, &args, &cfg).cycles as f64;
            let r = rtl_cycles(accel, &args, &cfg).cycles as f64;
            let f = fpga_cycles(accel, &args, &cfg).cycles as f64;
            rtl_accs.push((a / r).min(r / a));
            fpga_accs.push((a / f).min(f / a));
        }
        let rtl_avg = rtl_accs.iter().sum::<f64>() / rtl_accs.len() as f64;
        let fpga_avg = fpga_accs.iter().sum::<f64>() / fpga_accs.len() as f64;
        assert!(
            rtl_avg > 0.90,
            "{}: avg accuracy vs RTL too low: {rtl_avg:.3}",
            accel.name()
        );
        assert!(
            fpga_avg > 0.80 && fpga_avg < rtl_avg,
            "{}: FPGA accuracy band violated: {fpga_avg:.3} (rtl {rtl_avg:.3})",
            accel.name()
        );
    }
}

#[test]
fn keras_apps_lower_and_simulate() {
    for app in mosaicsim::kernels::keras::all_apps() {
        let p = app.lower_accelerated();
        let report = simulate(&p, AccelBank::with_defaults());
        let invocations: u64 = report.tiles.iter().map(|t| t.accel_invocations).sum();
        assert_eq!(
            invocations as usize,
            app.layers.iter().filter(|l| l.is_accelerable()).count(),
            "{}",
            app.name
        );
        assert!(report.cycles > 0);
    }
}
