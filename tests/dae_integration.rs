//! Integration tests for the Decoupled Access/Execute flow
//! (paper §VII-A): compiler pass → functional pair execution → timing
//! simulation with DeSC-extended cores.

use std::sync::Arc;

use mosaicsim::kernels::projection;
use mosaicsim::prelude::*;

fn simulate_plain(p: &mosaicsim::kernels::Prepared, config: CoreConfig) -> SimReport {
    let (trace, _) = p.trace(1).expect("trace");
    SystemBuilder::new(Arc::new(p.module.clone()), Arc::new(trace))
        .memory(dae_memory())
        .core(config, p.func, 0)
        .run()
        .expect("simulate")
}

fn simulate_dae_pairs(pairs: usize) -> SimReport {
    let mut p = projection::build(1);
    let slices = slice_dae(&mut p.module, p.func, DaeQueues::default()).expect("sliceable");
    // SPMD across pairs: each pair owns a disjoint queue namespace.
    let mut programs = Vec::new();
    for pair in 0..pairs {
        let offset = 1000 * pair as u32;
        let mut acc = TileProgram::single(slices.access, p.args.clone()).with_queue_offset(offset);
        acc.tile_id = pair as i64;
        acc.num_tiles = pairs as i64;
        let mut exe = TileProgram::single(slices.execute, p.args.clone()).with_queue_offset(offset);
        exe.tile_id = pair as i64;
        exe.num_tiles = pairs as i64;
        programs.push(acc);
        programs.push(exe);
    }
    let (trace, _) = record_trace(&p.module, p.mem.clone(), &programs).expect("trace");
    let module = Arc::new(p.module);
    let trace = Arc::new(trace);
    let mut builder = SystemBuilder::new(module, trace)
        .memory(dae_memory())
        .channels(dae_channel());
    for pair in 0..pairs {
        let offset = 1000 * pair as u32;
        builder = builder
            .core(
                CoreConfig::dae_access()
                    .with_name(&format!("access#{pair}"))
                    .with_queue_offset(offset),
                slices.access,
                2 * pair,
            )
            .core(
                CoreConfig::in_order()
                    .with_name(&format!("execute#{pair}"))
                    .with_queue_offset(offset),
                slices.execute,
                2 * pair + 1,
            );
    }
    builder.run().expect("simulate")
}

#[test]
fn dae_pair_beats_single_in_order_core() {
    let p = projection::build(1);
    let ino = simulate_plain(&p, CoreConfig::in_order());
    let dae = simulate_dae_pairs(1);
    let speedup = ino.cycles as f64 / dae.cycles as f64;
    assert!(
        speedup > 1.5,
        "DAE pair should clearly beat one InO core, got {speedup:.2}x"
    );
}

#[test]
fn more_dae_pairs_scale() {
    let one = simulate_dae_pairs(1);
    let four = simulate_dae_pairs(4);
    let speedup = one.cycles as f64 / four.cycles as f64;
    assert!(
        speedup > 1.5,
        "4 DAE pairs should beat 1 pair, got {speedup:.2}x"
    );
}

#[test]
fn dae_channels_drain_completely() {
    // After simulation every send was matched by a recv (no stranded
    // messages) — verified indirectly: the run terminates and both tiles
    // retire the traced instruction counts.
    let mut p = projection::build_with(40, 64);
    let slices = slice_dae(&mut p.module, p.func, DaeQueues::default()).unwrap();
    let programs = vec![
        TileProgram::single(slices.access, p.args.clone()),
        TileProgram::single(slices.execute, p.args.clone()),
    ];
    let (trace, _) = record_trace(&p.module, p.mem.clone(), &programs).unwrap();
    let expect0 = trace.tile(0).retired();
    let expect1 = trace.tile(1).retired();
    let report = SystemBuilder::new(Arc::new(p.module), Arc::new(trace))
        .memory(dae_memory())
        .channels(dae_channel())
        .core(CoreConfig::dae_access(), slices.access, 0)
        .core(CoreConfig::in_order(), slices.execute, 1)
        .run()
        .unwrap();
    assert_eq!(report.tiles[0].retired, expect0);
    assert_eq!(report.tiles[1].retired, expect1);
}

#[test]
fn desc_extensions_matter() {
    // Without the DeSC structures the InO access core serializes on its
    // loads and the pair loses most of its advantage.
    let mut p = projection::build(1);
    let slices = slice_dae(&mut p.module, p.func, DaeQueues::default()).unwrap();
    let programs = vec![
        TileProgram::single(slices.access, p.args.clone()),
        TileProgram::single(slices.execute, p.args.clone()),
    ];
    let (trace, _) = record_trace(&p.module, p.mem.clone(), &programs).unwrap();
    let module = Arc::new(p.module);
    let trace = Arc::new(trace);
    let with = SystemBuilder::new(module.clone(), trace.clone())
        .memory(dae_memory())
        .channels(dae_channel())
        .core(CoreConfig::dae_access(), slices.access, 0)
        .core(CoreConfig::in_order(), slices.execute, 1)
        .run()
        .unwrap();
    let without = SystemBuilder::new(module, trace)
        .memory(dae_memory())
        .channels(dae_channel())
        .core(CoreConfig::in_order(), slices.access, 0)
        .core(CoreConfig::in_order(), slices.execute, 1)
        .run()
        .unwrap();
    assert!(
        with.cycles * 2 < without.cycles,
        "DeSC structures should at least halve the runtime: {} vs {}",
        with.cycles,
        without.cycles
    );
}
