//! Deadlock-detector integration tests (DESIGN.md §4.3).
//!
//! Each test builds a kernel pair that deadlocks *in the timing model*
//! (the functional interpreter completes, so a trace exists) and asserts
//! that the run returns [`SimError::Deadlock`] with a wait-for snapshot —
//! at the cycle the system blocked, not at the cycle cap — and that the
//! fast-forwarding and naive schedulers return bit-identical verdicts.

use std::sync::Arc;

use mosaicsim::core::{record_trace, Interleaver, MosaicError, SimError, SystemBuilder};
use mosaicsim::ir::{Constant, FunctionBuilder, MemImage, Module, RtVal, TileProgram, Type};
use mosaicsim::mem::MemoryHierarchy;
use mosaicsim::tile::{ChannelConfig, ChannelSet, CoreConfig, CoreTile, NoAccel, StallReason, Tile};

/// Module with a producer that sends `n` values on queue 0 and a consumer
/// that receives `n` values from queue 0.
fn chatter_module() -> (Module, mosaicsim::ir::FuncId, mosaicsim::ir::FuncId) {
    let mut m = Module::new("chatter");

    let produce = m.add_function("produce", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(produce));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |b, i| {
        b.send(0, i);
    });
    b.ret(None);

    let consume = m.add_function("consume", vec![("n".into(), Type::I64)], Type::Void);
    let mut b = FunctionBuilder::new(m.function_mut(consume));
    let n = b.param(0);
    let e = b.create_block("entry");
    b.switch_to(e);
    b.emit_counted_loop("i", Constant::i64(0).into(), n, |b, _i| {
        b.recv(0, Type::I64);
    });
    b.ret(None);

    mosaicsim::ir::verify_module(&m).expect("verify");
    (m, produce, consume)
}

/// Records the trace of one producer/consumer pair with the given counts.
fn chatter_trace(
    m: &Module,
    produce: mosaicsim::ir::FuncId,
    consume: mosaicsim::ir::FuncId,
    sends: i64,
    recvs: i64,
) -> mosaicsim::trace::KernelTrace {
    let programs = vec![
        TileProgram::single(produce, vec![RtVal::Int(sends)]),
        TileProgram::single(consume, vec![RtVal::Int(recvs)]),
    ];
    let (trace, _) = record_trace(m, MemImage::new(), &programs).expect("functional run");
    trace
}

/// Builds the timing system for one recorded producer/consumer trace.
fn chatter_builder(
    m: &Module,
    trace: &mosaicsim::trace::KernelTrace,
    produce: mosaicsim::ir::FuncId,
    consume: mosaicsim::ir::FuncId,
    capacity: usize,
    consumer_offset: u32,
) -> SystemBuilder {
    SystemBuilder::new(Arc::new(m.clone()), Arc::new(trace.clone()))
        .memory(mosaicsim::core::small_memory())
        .channels(ChannelConfig {
            capacity,
            latency: 1,
        })
        .core(CoreConfig::in_order().with_name("producer"), produce, 0)
        .core(
            CoreConfig::in_order()
                .with_name("consumer")
                .with_queue_offset(consumer_offset),
            consume,
            1,
        )
}

fn expect_deadlock(result: Result<mosaicsim::core::SimReport, MosaicError>) -> SimError {
    match result {
        Err(MosaicError::Sim(e @ SimError::Deadlock { .. })) => e,
        other => panic!("expected a deadlock verdict, got {other:?}"),
    }
}

/// A producer that sends more values than the consumer ever receives
/// blocks on the full channel once the consumer finishes: `SendFull`.
#[test]
fn overproducing_sender_deadlocks_on_full_channel() {
    let (m, produce, consume) = chatter_module();
    // Functional queues are unbounded, so sending 100 and receiving 10
    // completes functionally; the timing model's capacity-8 channel
    // blocks the producer at send 19 (10 received + 8 buffered).
    let trace = chatter_trace(&m, produce, consume, 100, 10);

    let err = expect_deadlock(
        chatter_builder(&m, &trace, produce, consume, 8, 0)
            .run(),
    );
    let SimError::Deadlock { snapshot } = &err else {
        unreachable!()
    };
    // Only the producer is unfinished, blocked sending on queue 0.
    assert_eq!(snapshot.tiles.len(), 1, "consumer finished: {snapshot}");
    assert_eq!(snapshot.tiles[0].tile, "producer");
    assert_eq!(
        snapshot.tiles[0].reason,
        StallReason::SendFull { queue: 0 },
        "snapshot must name the blocked channel: {snapshot}"
    );
    // The blocking channel is reported full.
    let ch = snapshot
        .channels
        .iter()
        .find(|c| c.queue == 0)
        .expect("channel 0 in snapshot");
    assert_eq!(ch.occupancy, ch.capacity);
    assert_eq!(ch.capacity, 8);
    assert_eq!(ch.recvs, 10);
    assert!(snapshot.cycle > 0);
    // The rendering names the ingredients a user needs.
    let text = err.to_string();
    assert!(text.contains("producer"), "{text}");
    assert!(text.contains("full channel 0"), "{text}");

    // The naive stepper (watchdog path) returns the bit-identical
    // verdict, regardless of how long the watchdog window is.
    for window in [7, 1000] {
        let naive = expect_deadlock(
            chatter_builder(&m, &trace, produce, consume, 8, 0)
                .fast_forward(false)
                .watchdog_window(window)
                .run(),
        );
        assert_eq!(naive, err, "naive verdict diverged (window {window})");
    }
}

/// A consumer wired (by queue offset) to a channel nobody sends on blocks
/// on the empty channel; the producer blocks on the full one. Both sides
/// appear in the snapshot.
#[test]
fn mismatched_queue_wiring_deadlocks_both_tiles() {
    let (m, produce, consume) = chatter_module();
    let trace = chatter_trace(&m, produce, consume, 20, 20);

    // The consumer's timing config shifts its queues by 7, so it receives
    // from channel 7 while the producer fills channel 0.
    let err = expect_deadlock(
        chatter_builder(&m, &trace, produce, consume, 4, 7)
            .run(),
    );
    let SimError::Deadlock { snapshot } = &err else {
        unreachable!()
    };
    assert_eq!(snapshot.tiles.len(), 2, "{snapshot}");
    assert_eq!(snapshot.tiles[0].reason, StallReason::SendFull { queue: 0 });
    assert_eq!(snapshot.tiles[1].reason, StallReason::RecvEmpty { queue: 7 });
    let ch0 = snapshot
        .channels
        .iter()
        .find(|c| c.queue == 0)
        .expect("channel 0");
    assert_eq!(ch0.occupancy, 4);
    assert_eq!(ch0.recvs, 0);

    let naive = expect_deadlock(
        chatter_builder(&m, &trace, produce, consume, 4, 7)
            .fast_forward(false)
            .watchdog_window(64)
            .run(),
    );
    assert_eq!(naive, err);
}

/// A supply/compute pair with mismatched produce counts: the producer's
/// trace sends 5 values, the consumer's trace expects 10. Assembled from
/// two separate recordings, because the mismatch cannot execute
/// functionally.
#[test]
fn mismatched_produce_counts_deadlock_at_blocking_cycle() {
    let (m, produce, consume) = chatter_module();
    let short = chatter_trace(&m, produce, consume, 5, 5);
    let long = chatter_trace(&m, produce, consume, 10, 10);
    let module = Arc::new(m);

    let run = |fast_forward: bool| {
        let producer = CoreTile::new(
            CoreConfig::in_order().with_name("supply"),
            module.clone(),
            produce,
            Arc::new(short.tile(0).clone()),
            0,
        );
        let consumer = CoreTile::new(
            CoreConfig::in_order().with_name("compute"),
            module.clone(),
            consume,
            Arc::new(long.tile(1).clone()),
            1,
        );
        let tiles: Vec<Box<dyn Tile>> = vec![Box::new(producer), Box::new(consumer)];
        let mem = MemoryHierarchy::new(mosaicsim::core::small_memory(), 2);
        let channels = ChannelSet::new(ChannelConfig {
            capacity: 8,
            latency: 1,
        });
        let mut il = Interleaver::new(tiles, mem, channels, Box::new(NoAccel));
        il.set_fast_forward(fast_forward);
        il.set_watchdog_window(32);
        il.run()
    };

    let err = run(true).expect_err("must deadlock");
    let SimError::Deadlock { snapshot } = &err else {
        panic!("expected deadlock, got {err:?}");
    };
    // The producer finished its 5 sends; only the starved consumer hangs.
    assert_eq!(snapshot.tiles.len(), 1, "{snapshot}");
    assert_eq!(snapshot.tiles[0].tile, "compute");
    assert_eq!(snapshot.tiles[0].reason, StallReason::RecvEmpty { queue: 0 });
    let ch = snapshot
        .channels
        .iter()
        .find(|c| c.queue == 0)
        .expect("channel 0");
    assert_eq!(ch.sends, 5);
    assert_eq!(ch.recvs, 5);
    assert_eq!(ch.occupancy, 0);
    // Detected at the cycle the system blocked, far below the cycle cap.
    assert!(snapshot.cycle < 10_000, "cycle {} not early", snapshot.cycle);

    // Naive stepping agrees bit-for-bit.
    assert_eq!(run(false).expect_err("must deadlock"), err);
}

/// A live-but-slow system still reports `CycleLimit`, not `Deadlock`:
/// the watchdog only fires on provable no-progress.
#[test]
fn live_system_hitting_cap_is_not_a_deadlock() {
    let (m, produce, consume) = chatter_module();
    let trace = chatter_trace(&m, produce, consume, 200, 200);
    for ff in [true, false] {
        let err = chatter_builder(&m, &trace, produce, consume, 8, 0)
            .fast_forward(ff)
            .cycle_limit(40)
            .run()
            .expect_err("cap must trip");
        assert!(
            matches!(err, MosaicError::Sim(SimError::CycleLimit { .. })),
            "expected CycleLimit, got {err:?}"
        );
    }
}
